//! The background theory given to the prover (paper §4.1).
//!
//! The axioms formalize the dynamic semantics of CIL's intermediate
//! language under the logical memory model: an execution state ρ carries
//! a store (a map from integer addresses to integer values, `NULL` = 0),
//! `evalExpr` evaluates reified expression syntax
//! (`constExpr`, `mulExpr`, `addrExpr`, …) in a state, `location` gives an
//! l-value's address, and `select`/`store` are the map operations
//! (Simplify's built-ins, reconstructed here). Multiplication is
//! nonlinear, so — exactly as Simplify does — its sign behaviour is
//! supplied as triggered lemmas rather than decided by the linear core.

use std::sync::{Arc, OnceLock};
use stq_logic::term::{Formula, Sort, Term, Trigger};
use stq_logic::Theory;
use stq_util::Symbol;

/// The sort of execution states ρ.
pub fn state_sort() -> Sort {
    Sort::other("State")
}

/// The sort of stores σ.
pub fn store_sort() -> Sort {
    Sort::other("Store")
}

/// The sort of reified expressions.
pub fn expr_sort() -> Sort {
    Sort::other("CExpr")
}

/// The sort of reified l-values.
pub fn lval_sort() -> Sort {
    Sort::other("CLval")
}

/// `evalExpr(ρ, e)`.
pub fn eval_expr(rho: &Term, e: &Term) -> Term {
    Term::app("evalExpr", vec![rho.clone(), e.clone()])
}

/// `location(ρ, l)` — the address of an l-value.
pub fn location(rho: &Term, l: &Term) -> Term {
    Term::app("location", vec![rho.clone(), l.clone()])
}

/// `getStore(ρ)`.
pub fn get_store(rho: &Term) -> Term {
    Term::app("getStore", vec![rho.clone()])
}

/// `select(σ, a)`.
pub fn select(sigma: &Term, a: &Term) -> Term {
    Term::app("select", vec![sigma.clone(), a.clone()])
}

/// `store(σ, a, v)`.
pub fn store(sigma: &Term, a: &Term, v: &Term) -> Term {
    Term::app("store", vec![sigma.clone(), a.clone(), v.clone()])
}

/// `isHeapLoc(v)` — the value is a dynamically allocated location.
pub fn is_heap_loc(v: &Term) -> Formula {
    Formula::pred("isHeapLoc", vec![v.clone()])
}

/// Reified expression constructors, one per pattern operator.
pub mod syntax {
    use super::*;

    /// `constExpr(c)`.
    pub fn const_expr(c: &Term) -> Term {
        Term::app("constExpr", vec![c.clone()])
    }

    /// `addrExpr(l)` — `&l`.
    pub fn addr_expr(l: &Term) -> Term {
        Term::app("addrExpr", vec![l.clone()])
    }

    /// `derefExpr(e)` — `*e`.
    pub fn deref_expr(e: &Term) -> Term {
        Term::app("derefExpr", vec![e.clone()])
    }

    /// `negExpr(e)` — `-e`.
    pub fn neg_expr(e: &Term) -> Term {
        Term::app("negExpr", vec![e.clone()])
    }

    /// `notExpr(e)` — `!e`.
    pub fn not_expr(e: &Term) -> Term {
        Term::app("notExpr", vec![e.clone()])
    }

    /// A binary expression constructor by operator name
    /// (`addExpr`, `subExpr`, `mulExpr`, `divExpr`, `modExpr`,
    /// `eqExpr`, `neExpr`, `ltExpr`, `leExpr`, `gtExpr`, `geExpr`,
    /// `andExpr`, `orExpr`).
    pub fn bin_expr(name: &str, a: &Term, b: &Term) -> Term {
        Term::app(name, vec![a.clone(), b.clone()])
    }
}

fn ivar(n: &str) -> Term {
    Term::var(n, Sort::Int)
}

fn forall(vars: &[(&str, Sort)], triggers: Vec<Trigger>, body: Formula) -> Formula {
    Formula::forall(
        vars.iter().map(|(n, s)| (Symbol::intern(n), *s)).collect(),
        triggers,
        body,
    )
}

/// The complete background axiom set.
///
/// Triggers are chosen so that each axiom only fires when its defining
/// term is present, keeping instantiation linear in the obligation size.
pub fn background_axioms() -> Vec<Formula> {
    let rho = Term::var("rho", state_sort());
    let s = Term::var("s", store_sort());
    let a = ivar("a");
    let b = ivar("b");
    let v = ivar("v");
    let e1 = Term::var("e1", expr_sort());
    let e2 = Term::var("e2", expr_sort());
    let l1 = Term::var("l1", lval_sort());
    let c = ivar("c");

    let ev = |e: &Term| eval_expr(&rho, e);
    let mut axioms = Vec::new();

    // ----- evaluation of reified syntax -----

    // evalExpr(ρ, constExpr(c)) = c
    let const_e = syntax::const_expr(&c);
    axioms.push(forall(
        &[("rho", state_sort()), ("c", Sort::Int)],
        vec![vec![ev(&const_e)]],
        ev(&const_e).eq(&c),
    ));

    // evalExpr(ρ, addrExpr(l)) = location(ρ, l)
    let addr_e = syntax::addr_expr(&l1);
    axioms.push(forall(
        &[("rho", state_sort()), ("l1", lval_sort())],
        vec![vec![ev(&addr_e)]],
        ev(&addr_e).eq(&location(&rho, &l1)),
    ));

    // evalExpr(ρ, derefExpr(e)) = select(getStore(ρ), evalExpr(ρ, e))
    let deref_e = syntax::deref_expr(&e1);
    axioms.push(forall(
        &[("rho", state_sort()), ("e1", expr_sort())],
        vec![vec![ev(&deref_e)]],
        ev(&deref_e).eq(&select(&get_store(&rho), &ev(&e1))),
    ));

    // evalExpr(ρ, negExpr(e)) = -evalExpr(ρ, e)
    let neg_e = syntax::neg_expr(&e1);
    axioms.push(forall(
        &[("rho", state_sort()), ("e1", expr_sort())],
        vec![vec![ev(&neg_e)]],
        ev(&neg_e).eq(&ev(&e1).neg()),
    ));

    // Arithmetic binary operators: evalExpr distributes.
    for (ctor, op) in [("addExpr", "+"), ("subExpr", "-"), ("mulExpr", "*")] {
        let bin = syntax::bin_expr(ctor, &e1, &e2);
        axioms.push(forall(
            &[
                ("rho", state_sort()),
                ("e1", expr_sort()),
                ("e2", expr_sort()),
            ],
            vec![vec![ev(&bin)]],
            ev(&bin).eq(&Term::app(op, vec![ev(&e1), ev(&e2)])),
        ));
    }

    // Comparison operators evaluate to 0 or 1.
    type CmpBuilder = fn(&Term, &Term) -> Formula;
    let cmp_table: [(&str, CmpBuilder); 4] = [
        ("eqExpr", |x, y| x.eq(y)),
        ("neExpr", |x, y| x.ne(y)),
        ("ltExpr", |x, y| x.lt(y)),
        ("leExpr", |x, y| x.le(y)),
    ];
    for (ctor, rel) in cmp_table {
        let bin = syntax::bin_expr(ctor, &e1, &e2);
        let val = ev(&bin);
        let holds = rel(&ev(&e1), &ev(&e2));
        axioms.push(forall(
            &[
                ("rho", state_sort()),
                ("e1", expr_sort()),
                ("e2", expr_sort()),
            ],
            vec![vec![val.clone()]],
            Formula::and(vec![
                holds.clone().implies(val.eq(&Term::int(1))),
                holds.negate().implies(val.eq(&Term::int(0))),
            ]),
        ));
    }

    // !e evaluates to 0 or 1.
    let not_e = syntax::not_expr(&e1);
    let nval = ev(&not_e);
    axioms.push(forall(
        &[("rho", state_sort()), ("e1", expr_sort())],
        vec![vec![nval.clone()]],
        Formula::and(vec![
            ev(&e1).eq(&Term::int(0)).implies(nval.eq(&Term::int(1))),
            ev(&e1).ne(&Term::int(0)).implies(nval.eq(&Term::int(0))),
        ]),
    ));

    // ----- memory -----

    // Valid addresses are positive (NULL is 0).
    let loc = location(&rho, &l1);
    axioms.push(forall(
        &[("rho", state_sort()), ("l1", lval_sort())],
        vec![vec![loc.clone()]],
        loc.gt0(),
    ));

    // select(store(s, a, v), a) = v
    let upd = store(&s, &a, &v);
    axioms.push(forall(
        &[("s", store_sort()), ("a", Sort::Int), ("v", Sort::Int)],
        vec![vec![select(&upd, &a)]],
        select(&upd, &a).eq(&v),
    ));

    // a = b ∨ select(store(s, a, v), b) = select(s, b)
    axioms.push(forall(
        &[
            ("s", store_sort()),
            ("a", Sort::Int),
            ("b", Sort::Int),
            ("v", Sort::Int),
        ],
        vec![vec![select(&upd, &b)]],
        Formula::or(vec![a.eq(&b), select(&upd, &b).eq(&select(&s, &b))]),
    ));

    // ----- the heap predicate -----

    // Heap locations are valid (positive) addresses; NULL is not one.
    axioms.push(forall(
        &[("v", Sort::Int)],
        vec![vec![Term::app("isHeapLoc", vec![v.clone()])]],
        is_heap_loc(&v).implies(v.gt0()),
    ));

    // ----- nonlinear multiplication lemmas (Simplify-style) -----

    let prod = a.mul(&b);
    let trig = vec![vec![prod.clone()]];
    let int_vars: [(&str, Sort); 2] = [("a", Sort::Int), ("b", Sort::Int)];
    // Sign rules.
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        Formula::and(vec![a.gt0(), b.gt0()]).implies(prod.gt0()),
    ));
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        Formula::and(vec![a.lt0(), b.lt0()]).implies(prod.gt0()),
    ));
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        Formula::and(vec![a.gt0(), b.lt0()]).implies(prod.lt0()),
    ));
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        Formula::and(vec![a.lt0(), b.gt0()]).implies(prod.lt0()),
    ));
    // Integral domain: a*b = 0 ⇒ a = 0 ∨ b = 0.
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        prod.eq(&Term::int(0))
            .implies(Formula::or(vec![a.eq(&Term::int(0)), b.eq(&Term::int(0))])),
    ));
    // Annihilation: a zero factor makes the product zero (needed for
    // weak-inequality rules like nonneg's a ≥ 0 ∧ b ≥ 0 ⇒ a*b ≥ 0, which
    // case-splits on a = 0 ∨ a > 0).
    axioms.push(forall(
        &int_vars,
        trig.clone(),
        a.eq(&Term::int(0)).implies(prod.eq(&Term::int(0))),
    ));
    axioms.push(forall(
        &int_vars,
        trig,
        b.eq(&Term::int(0)).implies(prod.eq(&Term::int(0))),
    ));

    axioms
}

/// The background axioms preprocessed once per process as a shared
/// [`Theory`]. Every obligation the checker builds attaches this one
/// instance, so solver workers recognise it by pointer identity and
/// reuse their resident theory-loaded core across obligations instead of
/// re-clausifying ~20 axioms per proof attempt.
pub fn background_theory() -> Arc<Theory> {
    static THEORY: OnceLock<Arc<Theory>> = OnceLock::new();
    Arc::clone(THEORY.get_or_init(|| Arc::new(Theory::new(background_axioms()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_logic::solver::Problem;

    fn prove_with_axioms(hyps: Vec<Formula>, goal: Formula) -> bool {
        let mut p = Problem::new();
        for ax in background_axioms() {
            p.axiom(ax);
        }
        for h in hyps {
            p.hypothesis(h);
        }
        p.goal(goal);
        p.prove().is_proved()
    }

    #[test]
    fn constant_evaluation() {
        // c > 0 ⊢ evalExpr(ρ, constExpr(c)) > 0  — the pos constant rule.
        let rho = Term::cnst("rho0");
        let c = Term::cnst("c0");
        assert!(prove_with_axioms(
            vec![c.gt0()],
            eval_expr(&rho, &syntax::const_expr(&c)).gt0(),
        ));
    }

    #[test]
    fn multiplication_of_positives() {
        let rho = Term::cnst("rho0");
        let e1 = Term::cnst("ea");
        let e2 = Term::cnst("eb");
        let prod = syntax::bin_expr("mulExpr", &e1, &e2);
        assert!(prove_with_axioms(
            vec![eval_expr(&rho, &e1).gt0(), eval_expr(&rho, &e2).gt0()],
            eval_expr(&rho, &prod).gt0(),
        ));
    }

    #[test]
    fn subtraction_of_positives_fails() {
        // The erroneous E1 - E2 rule: must not be provable.
        let rho = Term::cnst("rho0");
        let e1 = Term::cnst("ea");
        let e2 = Term::cnst("eb");
        let diff = syntax::bin_expr("subExpr", &e1, &e2);
        assert!(!prove_with_axioms(
            vec![eval_expr(&rho, &e1).gt0(), eval_expr(&rho, &e2).gt0()],
            eval_expr(&rho, &diff).gt0(),
        ));
    }

    #[test]
    fn negation_flips_sign() {
        let rho = Term::cnst("rho0");
        let e1 = Term::cnst("ea");
        let neg = syntax::neg_expr(&e1);
        assert!(prove_with_axioms(
            vec![eval_expr(&rho, &e1).lt0()],
            eval_expr(&rho, &neg).gt0(),
        ));
    }

    #[test]
    fn address_of_is_not_null() {
        let rho = Term::cnst("rho0");
        let l = Term::cnst("l0");
        let addr = syntax::addr_expr(&l);
        assert!(prove_with_axioms(
            vec![],
            eval_expr(&rho, &addr).ne(&Term::int(0)),
        ));
    }

    #[test]
    fn product_of_nonzero_is_nonzero() {
        let rho = Term::cnst("rho0");
        let e1 = Term::cnst("ea");
        let e2 = Term::cnst("eb");
        let prod = syntax::bin_expr("mulExpr", &e1, &e2);
        assert!(prove_with_axioms(
            vec![
                eval_expr(&rho, &e1).ne(&Term::int(0)),
                eval_expr(&rho, &e2).ne(&Term::int(0)),
            ],
            eval_expr(&rho, &prod).ne(&Term::int(0)),
        ));
    }

    #[test]
    fn store_read_back() {
        let s = Term::cnst("s0");
        let aa = Term::cnst("a0");
        let vv = Term::cnst("v0");
        assert!(prove_with_axioms(
            vec![],
            select(&store(&s, &aa, &vv), &aa).eq(&vv),
        ));
    }

    #[test]
    fn store_frame() {
        let s = Term::cnst("s0");
        let aa = Term::cnst("a0");
        let bb = Term::cnst("b0");
        let vv = Term::cnst("v0");
        assert!(prove_with_axioms(
            vec![aa.ne(&bb)],
            select(&store(&s, &aa, &vv), &bb).eq(&select(&s, &bb)),
        ));
    }

    #[test]
    fn comparison_expressions_are_boolean() {
        let rho = Term::cnst("rho0");
        let e1 = Term::cnst("ea");
        let e2 = Term::cnst("eb");
        let eq = syntax::bin_expr("eqExpr", &e1, &e2);
        // evalExpr of a comparison is 0 or 1 — in particular ≥ 0.
        assert!(prove_with_axioms(
            vec![],
            Term::int(0).le(&eval_expr(&rho, &eq)),
        ));
    }

    #[test]
    fn null_is_not_a_heap_location() {
        assert!(prove_with_axioms(
            vec![is_heap_loc(&Term::cnst("v0"))],
            Term::cnst("v0").ne(&Term::int(0)),
        ));
    }
}
