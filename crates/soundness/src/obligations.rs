//! Proof-obligation generation (paper §4.2, §5.2).
//!
//! For a **value qualifier**, each `case` clause yields one obligation:
//! if an expression matches the clause's pattern and its predicate holds
//! (interpreted semantically in an arbitrary execution state ρ), then the
//! qualifier's invariant holds of the expression in ρ.
//!
//! For a **reference qualifier**:
//! * each `assign` form yields an *establishment* obligation — performing
//!   the assignment makes the invariant hold for the target l-value;
//! * `ondecl` yields an establishment obligation at declaration;
//! * one *preservation* obligation per right-hand-side form consistent
//!   with the `disallow` block — an arbitrary assignment to a *different*
//!   l-value keeps the invariant.
//!
//! `restrict` and `disallow` clauses generate no obligations of their own
//! (restrict does not affect whether qualified expressions satisfy their
//! invariants; disallow only *narrows* the preservation case analysis).

use crate::axioms::{self, syntax};
use std::fmt;
use stq_cir::ast::{BinOp, UnOp};
use stq_logic::solver::Problem;
use stq_logic::term::{Formula, Sort, Term};
use stq_qualspec::{
    AssignRhs, Classifier, Clause, CmpOp, InvPred, InvTerm, PTerm, Pattern, Pred, QualKind,
    QualifierDef, Registry,
};
use stq_util::Symbol;

/// One generated proof obligation.
pub struct Obligation {
    /// Human-readable description ("case clause 2: E1 * E2", …).
    pub description: String,
    /// The prover problem (background theory attached).
    pub problem: Problem,
}

impl fmt::Debug for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obligation({})", self.description)
    }
}

/// Which generator materializes an obligation (see [`ObligationSpec`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObligationKind {
    /// `case` clause `i` (0-based) of a value qualifier.
    ValueCase(usize),
    /// `assign` form `i` (0-based) of a reference qualifier.
    RefAssign(usize),
    /// The `ondecl` establishment obligation.
    RefOndecl,
    /// Preservation across an assignment of the given RHS form to
    /// another l-value.
    RefPreserve(RhsCase),
}

/// A cheap handle for one obligation: its description plus which
/// generator builds its prover problem. [`obligation_specs`] enumerates
/// these without constructing any formulas, so the checking pipeline can
/// flatten its task list up front and materialize problems *on the
/// workers* via [`build_obligation`], in parallel with proving.
#[derive(Clone, Debug)]
pub struct ObligationSpec {
    /// Human-readable description, identical to the built
    /// [`Obligation::description`].
    pub description: String,
    /// The generator that materializes this obligation.
    pub kind: ObligationKind,
}

/// Enumerates the proof obligations for `def` without building their
/// prover problems, in the same order [`obligations_for`] produces them.
///
/// Qualifiers without an `invariant` clause generate none: their
/// soundness is the implicit value-qualifier subtyping ("for free",
/// paper §2.1.4) or, for reference qualifiers, vacuous.
pub fn obligation_specs(def: &QualifierDef) -> Vec<ObligationSpec> {
    let Some(inv) = def.invariant.as_ref() else {
        return Vec::new();
    };
    match def.kind {
        QualKind::Value => def
            .cases
            .iter()
            .enumerate()
            .map(|(i, clause)| ObligationSpec {
                description: format!(
                    "case clause {} (`{}`) establishes `{}`",
                    i + 1,
                    clause.pattern,
                    inv
                ),
                kind: ObligationKind::ValueCase(i),
            })
            .collect(),
        QualKind::Ref => {
            let mut out = Vec::new();
            for (i, rhs) in def.assigns.iter().enumerate() {
                out.push(ObligationSpec {
                    description: format!("assign form `{rhs}` establishes `{inv}`"),
                    kind: ObligationKind::RefAssign(i),
                });
            }
            if def.ondecl {
                out.push(ObligationSpec {
                    description: format!("ondecl establishes `{inv}` at declaration"),
                    kind: ObligationKind::RefOndecl,
                });
            }
            for case in [
                RhsCase::Null,
                RhsCase::New,
                RhsCase::AddrOfVar,
                RhsCase::Read,
            ] {
                out.push(ObligationSpec {
                    description: format!(
                        "preservation across an assignment of {case} to another l-value"
                    ),
                    kind: ObligationKind::RefPreserve(case),
                });
            }
            out
        }
    }
}

/// Materializes the prover problem for one spec produced by
/// [`obligation_specs`] over the same `def`.
///
/// # Panics
///
/// Panics if `def` carries no invariant or the spec's index is out of
/// range — i.e. if the spec did not come from `obligation_specs(def)`.
pub fn build_obligation(
    registry: &Registry,
    def: &QualifierDef,
    spec: &ObligationSpec,
) -> Obligation {
    let inv = def
        .invariant
        .as_ref()
        .expect("specs exist only for invariant-bearing qualifiers");
    let problem = match spec.kind {
        ObligationKind::ValueCase(i) => value_case_problem(registry, inv, &def.cases[i]),
        ObligationKind::RefAssign(i) => ref_assign_problem(def, inv, &def.assigns[i]),
        ObligationKind::RefOndecl => ref_ondecl_problem(inv),
        ObligationKind::RefPreserve(case) => ref_preserve_problem(def, inv, case),
    };
    Obligation {
        description: spec.description.clone(),
        problem,
    }
}

/// Generates all proof obligations for `def` (spec enumeration plus
/// materialization in one step — the convenience form; the pipeline uses
/// the two halves separately).
pub fn obligations_for(registry: &Registry, def: &QualifierDef) -> Vec<Obligation> {
    obligation_specs(def)
        .iter()
        .map(|spec| build_obligation(registry, def, spec))
        .collect()
}

fn new_problem() -> Problem {
    let mut p = Problem::new();
    p.set_theory(axioms::background_theory());
    p
}

// ===== value qualifiers =====

fn value_case_problem(registry: &Registry, inv: &InvPred, clause: &Clause) -> Problem {
    let rho = Term::cnst("rho!");
    let mut problem = new_problem();
    // Each pattern variable becomes a fresh constant of the right
    // reified sort; Const-classified variables become constExpr(c).
    // A pattern variable with no `decl` (an ill-formed clause that
    // skipped the well-formedness check) binds as a plain Expr: the
    // obligation stays meaningful — and usually unprovable, which
    // surfaces the problem as a verdict instead of a panic.
    let bind = |x: Symbol| -> Term {
        let classifier = clause
            .decl(x)
            .map_or(Classifier::Expr, |decl| decl.classifier);
        match classifier {
            Classifier::Const => syntax::const_expr(&Term::cnst(&format!("c!{x}"))),
            Classifier::LValue | Classifier::Var => {
                Term::App(Symbol::intern(&format!("l!{x}")), Vec::new())
            }
            Classifier::Expr => Term::App(Symbol::intern(&format!("e!{x}")), Vec::new()),
        }
    };
    // The matched expression, as reified syntax.
    let subject_term = match &clause.pattern {
        Pattern::Var(x) => bind(*x),
        Pattern::Deref(x) => syntax::deref_expr(&bind(*x)),
        Pattern::AddrOf(x) => syntax::addr_expr(&bind(*x)),
        Pattern::New => {
            // Allocation results in expression position do not occur
            // (new matches instructions); treat as a fresh heap value.
            let v = Term::cnst("vnew!");
            problem.hypothesis(axioms::is_heap_loc(&v));
            syntax::const_expr(&v)
        }
        Pattern::Unop(UnOp::Neg, x) => syntax::neg_expr(&bind(*x)),
        Pattern::Unop(UnOp::Not, x) => syntax::not_expr(&bind(*x)),
        Pattern::Unop(UnOp::BitNot, x) => Term::app("bitNotExpr", vec![bind(*x)]),
        Pattern::Binop(op, x, y) => syntax::bin_expr(bin_ctor(*op), &bind(*x), &bind(*y)),
    };
    // Guard hypotheses, interpreted semantically.
    problem.hypothesis(guard_formula(registry, clause, &clause.guard, &rho, &bind));
    // Goal: the invariant holds of the matched expression in ρ.
    let value = axioms::eval_expr(&rho, &subject_term);
    problem.goal(value_inv_formula(inv, &value));
    problem
}

fn bin_ctor(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "addExpr",
        BinOp::Sub => "subExpr",
        BinOp::Mul => "mulExpr",
        BinOp::Div => "divExpr",
        BinOp::Mod => "modExpr",
        BinOp::Eq => "eqExpr",
        BinOp::Ne => "neExpr",
        BinOp::Lt => "ltExpr",
        BinOp::Le => "leExpr",
        BinOp::Gt => "gtExpr",
        BinOp::Ge => "geExpr",
        BinOp::And => "andExpr",
        BinOp::Or => "orExpr",
    }
}

/// Translates a clause guard into hypotheses over ρ. A qualifier check
/// `q'(X)` contributes `q'`'s invariant applied to X's value; checks on
/// invariant-less qualifiers contribute nothing (they carry no semantic
/// information).
fn guard_formula(
    registry: &Registry,
    clause: &Clause,
    guard: &Pred,
    rho: &Term,
    bind: &dyn Fn(Symbol) -> Term,
) -> Formula {
    match guard {
        Pred::True => Formula::True,
        Pred::And(a, b) => Formula::and(vec![
            guard_formula(registry, clause, a, rho, bind),
            guard_formula(registry, clause, b, rho, bind),
        ]),
        Pred::Or(a, b) => Formula::or(vec![
            guard_formula(registry, clause, a, rho, bind),
            guard_formula(registry, clause, b, rho, bind),
        ]),
        Pred::Cmp(op, a, b) => {
            let ta = pterm_value(clause, a, rho, bind);
            let tb = pterm_value(clause, b, rho, bind);
            cmp_formula(*op, &ta, &tb)
        }
        Pred::QualCheck(q, x) => match registry.get(*q).and_then(|d| d.invariant.clone()) {
            None => Formula::True,
            Some(inv) => {
                let value = axioms::eval_expr(rho, &bind(*x));
                value_inv_formula(&inv, &value)
            }
        },
    }
}

/// The semantic value of a predicate term: for a Const-classified
/// variable `C`, the constant `c!C` it reifies; literals denote
/// themselves.
fn pterm_value(clause: &Clause, t: &PTerm, rho: &Term, bind: &dyn Fn(Symbol) -> Term) -> Term {
    match t {
        PTerm::Int(v) => Term::int(*v),
        PTerm::Null => Term::int(0),
        PTerm::Var(x) => match clause.decl(*x).map(|d| d.classifier) {
            Some(Classifier::Const) => Term::cnst(&format!("c!{x}")),
            _ => axioms::eval_expr(rho, &bind(*x)),
        },
    }
}

fn cmp_formula(op: CmpOp, a: &Term, b: &Term) -> Formula {
    match op {
        CmpOp::Eq => a.eq(b),
        CmpOp::Ne => a.ne(b),
        CmpOp::Lt => a.lt(b),
        CmpOp::Le => a.le(b),
        CmpOp::Gt => b.lt(a),
        CmpOp::Ge => b.le(a),
    }
}

/// Translates a *value* qualifier invariant, substituting `value_term`
/// for `value(E)`.
pub fn value_inv_formula(inv: &InvPred, value_term: &Term) -> Formula {
    fn term(t: &InvTerm, value: &Term) -> Term {
        match t {
            InvTerm::Value(_) => value.clone(),
            InvTerm::Int(v) => Term::int(*v),
            InvTerm::Null => Term::int(0),
            InvTerm::Var(x) => Term::var(x.as_str(), Sort::Int),
            // Value invariants over single values cannot inspect memory;
            // well-formedness rejects location(), and *P only appears
            // under quantifiers which value invariants do not use.
            InvTerm::DerefVar(x) => Term::var(x.as_str(), Sort::Int),
            InvTerm::Location(_) => Term::cnst("unsupported-location"),
        }
    }
    fn go(inv: &InvPred, value: &Term) -> Formula {
        match inv {
            InvPred::Cmp(op, a, b) => cmp_formula(*op, &term(a, value), &term(b, value)),
            InvPred::IsHeapLoc(t) => axioms::is_heap_loc(&term(t, value)),
            InvPred::And(a, b) => Formula::and(vec![go(a, value), go(b, value)]),
            InvPred::Or(a, b) => Formula::or(vec![go(a, value), go(b, value)]),
            InvPred::Implies(a, b) => go(a, value).implies(go(b, value)),
            InvPred::Not(a) => go(a, value).negate(),
            InvPred::Forall(x, _, body) => {
                Formula::forall(vec![(*x, Sort::Int)], Vec::new(), go(body, value))
            }
        }
    }
    go(inv, value_term)
}

// ===== reference qualifiers =====

/// Right-hand-side forms for the preservation case analysis. The forms
/// cover every pointer-producing expression shape of the language; the
/// `disallow` block adds hypotheses (a read consistent with `disallow L`
/// does not read the subject's location; an address-of consistent with
/// `disallow &X` is not the subject's address).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RhsCase {
    /// `l' = NULL`.
    Null,
    /// `l' = malloc(...)` — a fresh heap location.
    New,
    /// `l' = &y` — the address of some variable.
    AddrOfVar,
    /// `l' = y` or `l' = *e` — a value read from memory.
    Read,
}

impl fmt::Display for RhsCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RhsCase::Null => "NULL",
            RhsCase::New => "a fresh allocation",
            RhsCase::AddrOfVar => "an address-of expression",
            RhsCase::Read => "a value read from memory",
        })
    }
}

/// Translates a *reference* qualifier invariant over a store `sigma` and
/// the subject's location `ll`.
pub fn ref_inv_formula(inv: &InvPred, sigma: &Term, ll: &Term) -> Formula {
    fn term(t: &InvTerm, sigma: &Term, ll: &Term) -> Term {
        match t {
            InvTerm::Value(_) => axioms::select(sigma, ll),
            InvTerm::Location(_) => ll.clone(),
            InvTerm::Var(x) => Term::var(x.as_str(), Sort::Int),
            InvTerm::DerefVar(x) => axioms::select(sigma, &Term::var(x.as_str(), Sort::Int)),
            InvTerm::Int(v) => Term::int(*v),
            InvTerm::Null => Term::int(0),
        }
    }
    fn go(inv: &InvPred, sigma: &Term, ll: &Term) -> Formula {
        match inv {
            InvPred::Cmp(op, a, b) => cmp_formula(*op, &term(a, sigma, ll), &term(b, sigma, ll)),
            InvPred::IsHeapLoc(t) => axioms::is_heap_loc(&term(t, sigma, ll)),
            InvPred::And(a, b) => Formula::and(vec![go(a, sigma, ll), go(b, sigma, ll)]),
            InvPred::Or(a, b) => Formula::or(vec![go(a, sigma, ll), go(b, sigma, ll)]),
            InvPred::Implies(a, b) => go(a, sigma, ll).implies(go(b, sigma, ll)),
            InvPred::Not(a) => go(a, sigma, ll).negate(),
            InvPred::Forall(x, _, body) => {
                // Quantification over memory locations of the appropriate
                // type; triggered on reads of the location.
                let p = Term::var(x.as_str(), Sort::Int);
                Formula::forall(
                    vec![(*x, Sort::Int)],
                    vec![vec![axioms::select(sigma, &p)]],
                    go(body, sigma, ll),
                )
            }
        }
    }
    go(inv, sigma, ll)
}

fn ref_assign_problem(def: &QualifierDef, inv: &InvPred, rhs: &AssignRhs) -> Problem {
    let sigma = Term::cnst("sigma!");
    let ll = Term::cnst("ll!");
    let mut problem = new_problem();
    problem.hypothesis(ll.gt0());
    if def.subject.classifier == Classifier::Var {
        problem.hypothesis(axioms::is_heap_loc(&ll).negate());
    }
    let v = Term::cnst("v!");
    match rhs {
        AssignRhs::Null => {
            problem.hypothesis(v.eq(&Term::int(0)));
        }
        AssignRhs::New => {
            problem.hypothesis(axioms::is_heap_loc(&v));
            problem.hypothesis(freshness(&sigma, &v));
        }
        AssignRhs::Const => {
            problem.hypothesis(axioms::is_heap_loc(&v).negate());
        }
    }
    let sigma_after = axioms::store(&sigma, &ll, &v);
    problem.goal(ref_inv_formula(inv, &sigma_after, &ll));
    problem
}

fn ref_ondecl_problem(inv: &InvPred) -> Problem {
    let sigma = Term::cnst("sigma!");
    let ll = Term::cnst("ll!");
    let mut problem = new_problem();
    problem.hypothesis(ll.gt0());
    // A freshly declared variable's location is not stored anywhere
    // and is not a heap location.
    problem.hypothesis(freshness(&sigma, &ll));
    problem.hypothesis(axioms::is_heap_loc(&ll).negate());
    problem.goal(ref_inv_formula(inv, &sigma, &ll));
    problem
}

fn ref_preserve_problem(def: &QualifierDef, inv: &InvPred, case: RhsCase) -> Problem {
    let sigma = Term::cnst("sigma!");
    let ll = Term::cnst("ll!");
    let mut problem = new_problem();
    let ll_other = Term::cnst("llOther!");
    let v = Term::cnst("v!");
    problem.hypothesis(ll.gt0());
    problem.hypothesis(ll_other.gt0());
    problem.hypothesis(ll_other.ne(&ll));
    if def.subject.classifier == Classifier::Var {
        problem.hypothesis(axioms::is_heap_loc(&ll).negate());
    }
    // The invariant holds before the assignment.
    problem.hypothesis(ref_inv_formula(inv, &sigma, &ll));
    match case {
        RhsCase::Null => {
            problem.hypothesis(v.eq(&Term::int(0)));
        }
        RhsCase::New => {
            problem.hypothesis(axioms::is_heap_loc(&v));
            problem.hypothesis(freshness(&sigma, &v));
        }
        RhsCase::AddrOfVar => {
            problem.hypothesis(v.gt0());
            problem.hypothesis(axioms::is_heap_loc(&v).negate());
            if def.disallow.addr_of {
                // disallow &X: the address taken is not the subject's.
                problem.hypothesis(v.ne(&ll));
            }
        }
        RhsCase::Read => {
            let addr = Term::cnst("aRead!");
            problem.hypothesis(addr.gt0());
            problem.hypothesis(v.eq(&axioms::select(&sigma, &addr)));
            if def.disallow.ref_use {
                // disallow L: the right-hand side does not read the
                // subject's location.
                problem.hypothesis(addr.ne(&ll));
            }
        }
    }
    let sigma_after = axioms::store(&sigma, &ll_other, &v);
    problem.goal(ref_inv_formula(inv, &sigma_after, &ll));
    problem
}

/// `∀p. select(σ, p) ≠ v` — the value is referenced nowhere in the store.
fn freshness(sigma: &Term, v: &Term) -> Formula {
    let p = Term::var("pFresh", Sort::Int);
    Formula::forall(
        vec![(Symbol::intern("pFresh"), Sort::Int)],
        vec![vec![axioms::select(sigma, &p)]],
        axioms::select(sigma, &p).ne(v),
    )
}
