//! The automated soundness checker (paper §4).
//!
//! Given a qualifier definition with a declared run-time `invariant`, the
//! checker proves — once, for all possible programs — that the
//! qualifier's type rules guarantee the invariant:
//!
//! * [`axioms`] — the background theory: CIL evaluation semantics,
//!   `select`/`store` maps, location validity, heap predicates, and
//!   Simplify-style nonlinear multiplication lemmas;
//! * [`obligations`] — per-rule proof-obligation generation
//!   (`case` clauses for value qualifiers; `assign`/`ondecl`
//!   establishment and per-RHS-form preservation for reference
//!   qualifiers);
//! * [`checker`] — the driver that discharges obligations with the
//!   `stq-logic` prover and reports verdicts with countermodels.
//!
//! # Examples
//!
//! The paper's running example: mistyping `pos`'s multiplication rule as
//! subtraction is caught automatically.
//!
//! ```
//! use stq_qualspec::Registry;
//! use stq_soundness::{check_qualifier, Verdict};
//!
//! let mut registry = Registry::new();
//! registry.add_source(
//!     "value qualifier pos(int Expr E)
//!          case E of
//!              decl int Expr E1, E2:
//!                  E1 - E2, where pos(E1) && pos(E2)
//!          invariant value(E) > 0",
//! ).unwrap();
//! let def = registry.get_by_name("pos").unwrap();
//! let report = check_qualifier(&registry, def);
//! assert_eq!(report.verdict, Verdict::Unsound);
//! ```

pub mod axioms;
pub mod cache;
pub mod checker;
pub mod obligations;
pub mod paper_encoding;

pub use axioms::background_theory;
pub use cache::{CachedProof, PersistOutcome, ProofCache};
pub use checker::{
    check_all, check_all_parallel, check_all_pipeline, check_all_pipeline_cancellable,
    check_all_pipeline_tuned, check_all_retrying, check_all_with, check_defs_pipeline,
    check_defs_pipeline_cancellable, check_defs_pipeline_cancellable_tuned, check_qualifier,
    check_qualifier_cached, check_qualifier_retrying, check_qualifier_with, ObligationResult,
    QualReport, SoundnessReport, Verdict,
};
pub use obligations::{
    build_obligation, obligation_specs, obligations_for, Obligation, ObligationKind,
    ObligationSpec,
};
pub use stq_logic::{
    fault, Budget, BudgetOverride, FaultKind, FaultPlan, Fingerprint, IoFaultKind, IoFaultPlan,
    ProverStats, Resource, RetryPolicy, SolverTuning, SolverWorker, PROVER_VERSION,
};
pub use stq_util::{CancelReason, CancelToken};
