//! The fingerprinted proof cache: incremental soundness checking.
//!
//! Every discharged obligation is keyed by its structural
//! [`Fingerprint`] (axioms + hypotheses + goal with de-Bruijn-indexed
//! binders, base budget, retry ladder, prover version — see
//! [`stq_logic::fingerprint`]). Because the prover is deterministic, a
//! *conclusive* outcome — `Proved` or `Refuted` — is a pure function of
//! that key, so re-checking an unchanged qualifier is a hash lookup
//! instead of a proof search. `ResourceOut` and `Crashed` outcomes are
//! never cached: the former is what the retry ladder exists to re-run,
//! the latter says nothing about the obligation.
//!
//! The cache is two-level:
//!
//! * an **in-memory map** behind a `RwLock`, shared by all workers of a
//!   parallel run (reads take the read lock; the map is tiny compared to
//!   a proof search, so contention is negligible);
//! * an optional **on-disk store** (`stqc --cache-dir DIR`): one
//!   versioned text file, loaded eagerly and rewritten by
//!   [`ProofCache::persist`]. A file whose header names a different
//!   [`PROVER_VERSION`] (or cannot be parsed) is **ignored, not
//!   trusted**: its entries are counted as invalidations and every
//!   obligation re-proves. Fingerprints embed the version too, so even a
//!   hand-edited header cannot resurrect stale entries.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use stq_logic::solver::Outcome;
use stq_logic::{Fingerprint, PROVER_VERSION};

/// The on-disk file name inside a `--cache-dir`.
pub const CACHE_FILE: &str = "proofs.stqcache";
/// The on-disk format version (independent of the prover version).
pub const FORMAT_VERSION: &str = "v1";

/// A cached conclusive proof outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedProof {
    /// The obligation was proved.
    Proved,
    /// The search saturated; the candidate countermodel is replayed so a
    /// cached refutation is as diagnosable as a fresh one.
    Refuted {
        /// Pretty-printed literals of the surviving assignment.
        model: Vec<String>,
    },
}

impl CachedProof {
    /// Extracts the cacheable part of an outcome, if it is conclusive.
    pub fn from_outcome(outcome: &Outcome) -> Option<CachedProof> {
        match outcome {
            Outcome::Proved { .. } => Some(CachedProof::Proved),
            Outcome::Refuted { model, .. } => Some(CachedProof::Refuted {
                model: model.clone(),
            }),
            Outcome::ResourceOut { .. } | Outcome::Crashed { .. } => None,
        }
    }
}

/// A concurrent, optionally disk-backed map from obligation fingerprints
/// to conclusive proof outcomes. See the module docs for semantics.
#[derive(Debug)]
pub struct ProofCache {
    mem: RwLock<HashMap<Fingerprint, CachedProof>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for ProofCache {
    fn default() -> ProofCache {
        ProofCache::in_memory()
    }
}

impl ProofCache {
    /// A purely in-memory cache (no disk backing).
    pub fn in_memory() -> ProofCache {
        ProofCache {
            mem: RwLock::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// A disk-backed cache rooted at `dir` (created if missing). Any
    /// existing store is loaded now; entries from a different prover
    /// version or a malformed file are dropped and counted as
    /// [`ProofCache::invalidations`].
    ///
    /// # Errors
    ///
    /// Only on filesystem errors (cannot create `dir`, cannot read an
    /// existing store). A *stale or corrupt* store is not an error — it
    /// is invalidated, which is the designed behaviour.
    pub fn at_dir(dir: impl AsRef<Path>) -> io::Result<ProofCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let cache = ProofCache {
            mem: RwLock::new(HashMap::new()),
            dir: Some(dir.clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        };
        let file = dir.join(CACHE_FILE);
        if file.exists() {
            let text = fs::read_to_string(&file)?;
            cache.load_store(&text);
        }
        Ok(cache)
    }

    /// Parses a store file into the in-memory map, invalidating anything
    /// untrustworthy.
    fn load_store(&self, text: &str) {
        let mut lines = text.lines();
        let header_ok = lines.next().is_some_and(|header| {
            let mut parts = header.split(' ');
            parts.next() == Some("stq-proof-cache")
                && parts.next() == Some(FORMAT_VERSION)
                && parts.next() == Some(PROVER_VERSION)
                && parts.next().is_none()
        });
        if !header_ok {
            // Count what we refused to trust; `max(1)` so even an
            // entry-less stale file registers as an invalidation.
            let stale = text.lines().skip(1).filter(|l| !l.is_empty()).count() as u64;
            self.invalidations.fetch_add(stale.max(1), Ordering::Relaxed);
            return;
        }
        let mut map = self.mem.write().expect("cache lock");
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some((fp, proof)) => {
                    map.insert(fp, proof);
                }
                None => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Looks up a fingerprint, counting the hit or miss.
    pub fn lookup(&self, fp: Fingerprint) -> Option<CachedProof> {
        let found = self.mem.read().expect("cache lock").get(&fp).cloned();
        match found {
            Some(proof) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(proof)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a conclusive outcome under `fp`. Inconclusive outcomes
    /// (`ResourceOut`, `Crashed`) are ignored.
    pub fn record(&self, fp: Fingerprint, outcome: &Outcome) {
        if let Some(proof) = CachedProof::from_outcome(outcome) {
            self.mem.write().expect("cache lock").insert(fp, proof);
        }
    }

    /// Writes the store file, when this cache is disk-backed. Call once
    /// at the end of a run; entries accumulated in memory (including
    /// those loaded at startup) are written atomically via a temp file.
    ///
    /// # Errors
    ///
    /// Filesystem errors only.
    pub fn persist(&self) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let map = self.mem.read().expect("cache lock");
        let mut out = format!("stq-proof-cache {FORMAT_VERSION} {PROVER_VERSION}\n");
        let mut entries: Vec<_> = map.iter().collect();
        entries.sort_by_key(|(fp, _)| **fp);
        for (fp, proof) in entries {
            match proof {
                CachedProof::Proved => {
                    out.push_str(&format!("{fp}\tP\n"));
                }
                CachedProof::Refuted { model } => {
                    let joined: Vec<String> = model.iter().map(|s| escape(s)).collect();
                    out.push_str(&format!("{fp}\tR\t{}\n", joined.join("\u{1f}")));
                }
            }
        }
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        fs::write(&tmp, out)?;
        fs::rename(&tmp, dir.join(CACHE_FILE))
    }

    /// Number of cached entries currently in memory.
    pub fn len(&self) -> usize {
        self.mem.read().expect("cache lock").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries refused at load time (version/format mismatch).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// The backing directory, when disk-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

fn parse_entry(line: &str) -> Option<(Fingerprint, CachedProof)> {
    let mut fields = line.split('\t');
    let fp: Fingerprint = fields.next()?.parse().ok()?;
    match fields.next()? {
        "P" => fields.next().is_none().then_some((fp, CachedProof::Proved)),
        "R" => {
            let payload = fields.next().unwrap_or("");
            let model = if payload.is_empty() {
                Vec::new()
            } else {
                payload.split('\u{1f}').map(unescape).collect()
            };
            fields
                .next()
                .is_none()
                .then_some((fp, CachedProof::Refuted { model }))
        }
        _ => None,
    }
}

/// Escapes a countermodel line for the single-line store format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{1f}' => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('u') => out.push('\u{1f}'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_logic::ProverStats;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    fn proved() -> Outcome {
        Outcome::Proved {
            stats: ProverStats::default(),
        }
    }

    fn refuted(model: &[&str]) -> Outcome {
        Outcome::Refuted {
            model: model.iter().map(|s| s.to_string()).collect(),
            stats: ProverStats::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = ProofCache::in_memory();
        assert_eq!(c.lookup(fp(1)), None);
        c.record(fp(1), &proved());
        assert_eq!(c.lookup(fp(1)), Some(CachedProof::Proved));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn inconclusive_outcomes_are_never_cached() {
        let c = ProofCache::in_memory();
        c.record(
            fp(2),
            &Outcome::ResourceOut {
                resource: stq_logic::Resource::Rounds,
                stats: ProverStats::default(),
            },
        );
        c.record(
            fp(3),
            &Outcome::Crashed {
                message: "boom".into(),
                stats: ProverStats::default(),
            },
        );
        assert!(c.is_empty());
    }

    #[test]
    fn disk_round_trip_preserves_entries_and_models() {
        let dir = tmpdir("roundtrip");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(10), &proved());
        c.record(fp(11), &refuted(&["x = 1", "weird\tmodel\nline \\ with \u{1f} bytes"]));
        c.persist().unwrap();

        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.invalidations(), 0);
        assert_eq!(reloaded.lookup(fp(10)), Some(CachedProof::Proved));
        match reloaded.lookup(fp(11)) {
            Some(CachedProof::Refuted { model }) => {
                assert_eq!(model[0], "x = 1");
                assert_eq!(model[1], "weird\tmodel\nline \\ with \u{1f} bytes");
            }
            other => panic!("expected refutation, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_prover_version_is_invalidated_not_trusted() {
        let dir = tmpdir("stale");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE),
            format!(
                "stq-proof-cache {FORMAT_VERSION} stq-prover-0.0.0-ancient\n\
                 {}\tP\n{}\tP\n",
                fp(7),
                fp(8)
            ),
        )
        .unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty(), "stale entries must not load");
        assert_eq!(c.invalidations(), 2);
        assert_eq!(c.lookup(fp(7)), None, "stale entry is re-proved");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_are_invalidated_individually() {
        let dir = tmpdir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE),
            format!(
                "stq-proof-cache {FORMAT_VERSION} {PROVER_VERSION}\n\
                 {}\tP\nnot-hex\tP\n{}\tX\n",
                fp(20),
                fp(21)
            ),
        )
        .unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(c.len(), 1, "the good entry survives");
        assert_eq!(c.invalidations(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_is_wholly_invalidated() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CACHE_FILE), "not a cache file at all\n").unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty());
        assert!(c.invalidations() >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_without_dir_is_a_no_op() {
        let c = ProofCache::in_memory();
        c.record(fp(1), &proved());
        assert!(c.persist().is_ok());
        assert!(c.dir().is_none());
    }

    #[test]
    fn escape_unescape_round_trips() {
        for s in ["plain", "tab\there", "nl\nthere", "back\\slash", "\u{1f}sep"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }
}
