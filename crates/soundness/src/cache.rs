//! The fingerprinted proof cache: incremental, crash-safe soundness
//! checking.
//!
//! Every discharged obligation is keyed by its structural
//! [`Fingerprint`] (axioms + hypotheses + goal with de-Bruijn-indexed
//! binders, base budget, retry ladder, prover version — see
//! [`stq_logic::fingerprint`]). Because the prover is deterministic, a
//! *conclusive* outcome — `Proved` or `Refuted` — is a pure function of
//! that key, so re-checking an unchanged qualifier is a hash lookup
//! instead of a proof search. `ResourceOut` (including timed-out and
//! cancelled attempts) and `Crashed` outcomes are never cached: the
//! former is what the retry ladder exists to re-run, the latter says
//! nothing about the obligation.
//!
//! The cache is two-level:
//!
//! * an **in-memory map** behind a `RwLock`, shared by all workers of a
//!   parallel run (reads take the read lock; the map is tiny compared to
//!   a proof search, so contention is negligible);
//! * an optional **on-disk store** (`stqc --cache-dir DIR`): an
//!   append-only journal designed to survive crashes, torn writes, and
//!   concurrent writers.
//!
//! # The journal format (v2)
//!
//! The store file starts with a header line naming the format and the
//! [`PROVER_VERSION`]; every following line is one entry whose final
//! tab-separated field is the CRC-32 (IEEE) of everything before it:
//!
//! ```text
//! stq-proof-cache v2 stq-prover-0.1.0-r1
//! 00ab…ff\tP\t3f27ab90
//! 00cd…01\tR\tx = 1\u{1f}y = 0\t9c114e02
//! ```
//!
//! Crash safety rests on three mechanisms:
//!
//! * **Append-only persistence** — a run's fresh conclusive entries are
//!   appended, never rewritten, so a crash mid-persist can tear at most
//!   the journal's *tail*. On load, any line that fails to parse or
//!   fails its CRC is dropped and counted as an invalidation; every
//!   intact entry is kept. A torn tail therefore costs re-proving the
//!   torn entries, never a wrong verdict.
//! * **Atomic compaction** — when a load found anything untrustworthy
//!   (or the file is new/stale), the next [`ProofCache::persist`]
//!   rewrites the whole journal via a temp file + `rename`, so the store
//!   is only ever replaced by a fully formed file.
//! * **An advisory lock file** (`proofs.stqcache.lock`, `flock(2)` on
//!   Unix) — loading, appending, compacting, and tail-following all run
//!   under an exclusive lock, so two `stqc` processes sharing a
//!   `--cache-dir` serialize their writes instead of interleaving them.
//!   Entries the two runs both prove are simply appended twice; the
//!   journal's last-entry-wins load makes duplicates harmless (the
//!   prover is deterministic, so they are identical anyway).
//!
//! # Journal follow (shared warm cache)
//!
//! Long-lived processes sharing a `--cache-dir` (an HA daemon pool) do
//! not reload the whole journal per lookup. Instead the cache remembers
//! how far into the journal it has read (`{inode, offset}`); on an
//! in-memory **miss**, [`ProofCache::lookup`] re-scans the journal
//! *tail* — entries a peer appended since our last scan — and adopts
//! them before conceding the miss. A proof a peer process discharged
//! and persisted is therefore served warm here, counted in
//! [`ProofCache::follow_hits`] (and as a hit, not a miss). A cheap
//! `stat(2)` probe skips the lock and the read entirely when nothing
//! changed; an inode change (a peer compacted) or a shrink triggers a
//! full re-scan with the header re-verified; only complete,
//! newline-terminated lines are consumed, so a peer's in-flight append
//! is never half-read.
//!
//! A file whose header names a different [`PROVER_VERSION`] (or cannot
//! be parsed) is **ignored, not trusted**: its entries are counted as
//! invalidations and every obligation re-proves. Fingerprints embed the
//! version too, so even a hand-edited header cannot resurrect stale
//! entries.
//!
//! Persistence consults [`stq_logic::fault::next_io_write`], so tests
//! can inject full-disk and torn-write faults at specific write
//! operations and prove that neither poisons a verdict.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use stq_logic::fault::{self, IoFaultKind};
use stq_logic::solver::Outcome;
use stq_logic::{Fingerprint, PROVER_VERSION};

/// The on-disk file name inside a `--cache-dir`.
pub const CACHE_FILE: &str = "proofs.stqcache";
/// The advisory lock file guarding the journal against concurrent
/// writers (see the module docs).
pub const LOCK_FILE: &str = "proofs.stqcache.lock";
/// The on-disk format version (independent of the prover version).
/// v2 = CRC-checked append-only journal; v1 files fail the header check
/// and are invalidated wholesale.
pub const FORMAT_VERSION: &str = "v2";

/// A cached conclusive proof outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedProof {
    /// The obligation was proved.
    Proved,
    /// The search saturated; the candidate countermodel is replayed so a
    /// cached refutation is as diagnosable as a fresh one.
    Refuted {
        /// Pretty-printed literals of the surviving assignment.
        model: Vec<String>,
    },
}

impl CachedProof {
    /// Extracts the cacheable part of an outcome, if it is conclusive.
    pub fn from_outcome(outcome: &Outcome) -> Option<CachedProof> {
        match outcome {
            Outcome::Proved { .. } => Some(CachedProof::Proved),
            Outcome::Refuted { model, .. } => Some(CachedProof::Refuted {
                model: model.clone(),
            }),
            Outcome::ResourceOut { .. } | Outcome::Crashed { .. } => None,
        }
    }
}

/// What [`ProofCache::persist`] actually did, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistOutcome {
    /// No fresh entries and nothing to repair: no write was performed.
    /// Counted in [`ProofCache::persist_skips`] when disk-backed.
    Skipped,
    /// This many fresh entries were appended to the journal.
    Appended(usize),
    /// The journal was rewritten atomically with this many entries
    /// (fresh store, stale/corrupt load, or an explicit
    /// [`ProofCache::compact`]).
    Compacted(usize),
}

/// The journal's health as observed at load time; decides whether the
/// next persist may append or must compact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DiskState {
    /// No store file existed (or the cache is in-memory).
    Fresh,
    /// Valid header, every entry intact: appends are safe.
    Clean,
    /// Stale header or at least one invalid entry: the next persist
    /// rewrites the file from scratch.
    Corrupt,
}

/// How far into the on-disk journal this cache has read: the file's
/// identity (inode on Unix) and the byte offset up to which entries have
/// been folded into the in-memory map. `offset == u64::MAX` marks a
/// journal we observed but refused to trust (stale header installed by a
/// peer) — every probe mismatches, so the header is re-checked until our
/// own persist compacts it away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct JournalPos {
    ino: u64,
    offset: u64,
}

/// A concurrent, optionally disk-backed map from obligation fingerprints
/// to conclusive proof outcomes. See the module docs for semantics.
#[derive(Debug)]
pub struct ProofCache {
    mem: RwLock<HashMap<Fingerprint, CachedProof>>,
    /// Entries recorded since the last successful persist, in record
    /// order — the journal's append batch.
    dirty: Mutex<Vec<(Fingerprint, CachedProof)>>,
    state: Mutex<DiskState>,
    /// Journal-follow cursor (see the module docs). Lock order: `pos`
    /// before the advisory file lock, never the reverse.
    pos: Mutex<JournalPos>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    follow_hits: AtomicU64,
    invalidations: AtomicU64,
    persist_skips: AtomicU64,
}

impl Default for ProofCache {
    fn default() -> ProofCache {
        ProofCache::in_memory()
    }
}

impl ProofCache {
    /// A purely in-memory cache (no disk backing).
    pub fn in_memory() -> ProofCache {
        ProofCache {
            mem: RwLock::new(HashMap::new()),
            dirty: Mutex::new(Vec::new()),
            state: Mutex::new(DiskState::Fresh),
            pos: Mutex::new(JournalPos::default()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            follow_hits: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            persist_skips: AtomicU64::new(0),
        }
    }

    /// A disk-backed cache rooted at `dir` (created if missing). Any
    /// existing journal is loaded now, under the advisory lock; entries
    /// from a different prover version, malformed lines, and CRC
    /// failures (torn tails) are dropped and counted as
    /// [`ProofCache::invalidations`].
    ///
    /// # Errors
    ///
    /// Only on filesystem errors (cannot create `dir`, cannot read an
    /// existing store, cannot take the lock). A *stale or corrupt* store
    /// is not an error — it is invalidated, which is the designed
    /// behaviour.
    pub fn at_dir(dir: impl AsRef<Path>) -> io::Result<ProofCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let cache = ProofCache {
            dir: Some(dir.clone()),
            ..ProofCache::in_memory()
        };
        let file = dir.join(CACHE_FILE);
        if file.exists() {
            let _lock = filelock::lock_exclusive(&dir.join(LOCK_FILE))?;
            let text = fs::read_to_string(&file)?;
            let meta = fs::metadata(&file)?;
            let state = cache.load_store(&text);
            *cache.state.lock().expect("state lock") = state;
            *cache.pos.lock().expect("pos lock") = JournalPos {
                ino: file_id(&meta),
                offset: text.len() as u64,
            };
        }
        Ok(cache)
    }

    /// Parses a journal into the in-memory map, invalidating anything
    /// untrustworthy, and reports the journal's health.
    fn load_store(&self, text: &str) -> DiskState {
        let mut lines = text.lines();
        let header_ok = lines.next().is_some_and(|header| {
            let mut parts = header.split(' ');
            parts.next() == Some("stq-proof-cache")
                && parts.next() == Some(FORMAT_VERSION)
                && parts.next() == Some(PROVER_VERSION)
                && parts.next().is_none()
        });
        if !header_ok {
            // Count what we refused to trust; `max(1)` so even an
            // entry-less stale (or zero-length) file registers as an
            // invalidation.
            let stale = text.lines().skip(1).filter(|l| !l.is_empty()).count() as u64;
            self.invalidations.fetch_add(stale.max(1), Ordering::Relaxed);
            return DiskState::Corrupt;
        }
        let mut corrupt = false;
        let mut map = self.mem.write().expect("cache lock");
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some((fp, proof)) => {
                    // Duplicates (concurrent writers, re-proved entries)
                    // resolve last-wins; the prover's determinism makes
                    // the values identical anyway.
                    map.insert(fp, proof);
                }
                None => {
                    // A torn tail, a flipped bit, a hand-edited line:
                    // drop exactly this entry, keep the rest.
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    corrupt = true;
                }
            }
        }
        if corrupt {
            DiskState::Corrupt
        } else {
            DiskState::Clean
        }
    }

    /// Looks up a fingerprint, counting the hit or miss. On an in-memory
    /// miss of a disk-backed cache, the journal tail is re-scanned first
    /// (see the module docs): a proof a peer process appended since our
    /// last scan is adopted and served as a hit — counted additionally
    /// in [`ProofCache::follow_hits`] — not conceded as a miss.
    pub fn lookup(&self, fp: Fingerprint) -> Option<CachedProof> {
        let found = self.mem.read().expect("cache lock").get(&fp).cloned();
        if let Some(proof) = found {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(proof);
        }
        if self.dir.is_some() && self.follow() {
            let found = self.mem.read().expect("cache lock").get(&fp).cloned();
            if let Some(proof) = found {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.follow_hits.fetch_add(1, Ordering::Relaxed);
                return Some(proof);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// The journal-follow pass: re-scans whatever a peer appended to the
    /// journal since our last scan and folds it into the in-memory map.
    /// Returns whether anything new was adopted. Never an error: a
    /// vanished file, a lock failure, or an untrusted journal simply
    /// declines to follow — the caller re-proves, which is always sound.
    fn follow(&self) -> bool {
        let Some(dir) = &self.dir else {
            return false;
        };
        if *self.state.lock().expect("state lock") == DiskState::Corrupt {
            // Our own load already distrusts this journal; adopting its
            // tail would resurrect what we invalidated.
            return false;
        }
        let file = dir.join(CACHE_FILE);
        let mut pos = self.pos.lock().expect("pos lock");
        // Cheap probe: same file, same length — nothing appended, no
        // lock taken, no bytes read.
        let Ok(meta) = fs::metadata(&file) else {
            return false;
        };
        if file_id(&meta) == pos.ino && meta.len() == pos.offset {
            return false;
        }
        let Ok(_lock) = filelock::lock_exclusive(&dir.join(LOCK_FILE)) else {
            return false;
        };
        // Re-read under the lock: the probe may have raced a compaction
        // rename, and an appender's partial flush is excluded by the
        // complete-lines-only rule in `fold_tail`.
        let Ok(text) = fs::read_to_string(&file) else {
            return false;
        };
        let Ok(meta) = fs::metadata(&file) else {
            return false;
        };
        let id = file_id(&meta);
        let rescan = id != pos.ino || (text.len() as u64) < pos.offset;
        if rescan && text.lines().next() != Some(current_header().as_str()) {
            // A peer installed a journal we must not trust (stale
            // prover version, foreign format). The MAX-offset sentinel
            // keeps the header re-checked on every miss until our own
            // persist compacts the file back to health.
            *pos = JournalPos { ino: id, offset: u64::MAX };
            return false;
        }
        self.fold_tail(&text, &mut pos, id) > 0
    }

    /// Folds the journal bytes beyond `pos` into the in-memory map,
    /// advancing the cursor past exactly the complete, newline-terminated
    /// lines consumed. Entries already known stay as they are (the
    /// prover is deterministic, so a duplicate is identical anyway);
    /// complete lines that fail to parse or fail their CRC are counted
    /// as invalidations and skipped. Returns how many entries were newly
    /// adopted. The caller holds the advisory lock and, when scanning
    /// from the top, has already verified the header.
    fn fold_tail(&self, text: &str, pos: &mut JournalPos, id: u64) -> usize {
        let rescan = id != pos.ino || (text.len() as u64) < pos.offset;
        let mut start = if rescan { 0 } else { pos.offset as usize };
        if start == 0 {
            match text.find('\n') {
                Some(nl) => start = nl + 1,
                None => {
                    *pos = JournalPos { ino: id, offset: 0 };
                    return 0;
                }
            }
        }
        let tail = &text[start..];
        let Some(last_nl) = tail.rfind('\n') else {
            *pos = JournalPos { ino: id, offset: start as u64 };
            return 0;
        };
        let mut adopted = 0;
        {
            let mut map = self.mem.write().expect("cache lock");
            for line in tail[..=last_nl].lines() {
                if line.is_empty() {
                    continue;
                }
                match parse_entry(line) {
                    Some((fp, proof)) => {
                        if map.insert(fp, proof.clone()) != Some(proof) {
                            adopted += 1;
                        }
                    }
                    None => {
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        *pos = JournalPos {
            ino: id,
            offset: (start + last_nl + 1) as u64,
        };
        adopted
    }

    /// Records a conclusive outcome under `fp`, marking it dirty for the
    /// next [`ProofCache::persist`]. Inconclusive outcomes
    /// (`ResourceOut` — including timed-out and cancelled attempts — and
    /// `Crashed`) are ignored, which is what lets an interrupted run
    /// resume: unreached work was never cached, so it re-proves.
    pub fn record(&self, fp: Fingerprint, outcome: &Outcome) {
        if let Some(proof) = CachedProof::from_outcome(outcome) {
            let fresh = {
                let mut map = self.mem.write().expect("cache lock");
                map.insert(fp, proof.clone()) != Some(proof.clone())
            };
            if fresh {
                self.dirty
                    .lock()
                    .expect("dirty lock")
                    .push((fp, proof));
            }
        }
    }

    /// Flushes to disk, when this cache is disk-backed. Called at the
    /// end of a run — including an *interrupted* one, so conclusive
    /// outcomes survive a SIGINT. Under the advisory lock it either:
    ///
    /// * **skips** the write entirely (no fresh entries, journal clean —
    ///   counted in [`ProofCache::persist_skips`]),
    /// * **appends** the fresh entries to the journal, or
    /// * **compacts**: rewrites the whole journal atomically (temp
    ///   file plus rename), merging any entries a concurrent process
    ///   appended since our load, when the load found the file
    ///   missing, stale, or corrupt.
    ///
    /// # Errors
    ///
    /// Filesystem errors only (including injected I/O faults). On error
    /// the fresh entries stay dirty, so a later retry can still save
    /// them; an append that failed mid-write may leave a torn tail,
    /// which the next load recovers from by design.
    pub fn persist(&self) -> io::Result<PersistOutcome> {
        let Some(dir) = &self.dir else {
            return Ok(PersistOutcome::Skipped);
        };
        let mut dirty = self.dirty.lock().expect("dirty lock");
        let mut state = self.state.lock().expect("state lock");
        let file = dir.join(CACHE_FILE);
        // Appending assumes the journal on disk still has a valid
        // current header; if it vanished since load, fall back to a full
        // rewrite.
        let must_compact = *state != DiskState::Clean || !file.exists();
        if dirty.is_empty() && !must_compact {
            self.persist_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(PersistOutcome::Skipped);
        }
        if dirty.is_empty() && *state == DiskState::Fresh {
            // Nothing proved and nothing on disk to repair: writing a
            // header-only journal would be pure churn.
            self.persist_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(PersistOutcome::Skipped);
        }
        let mut pos = self.pos.lock().expect("pos lock");
        let _lock = filelock::lock_exclusive(&dir.join(LOCK_FILE))?;
        let outcome = if must_compact {
            self.compact_locked(dir, &mut pos)?
        } else {
            // The multi-writer append discipline: re-verify the header
            // *under the lock* (a peer may have replaced the journal
            // since our load), fold in whatever peers appended since our
            // last scan, and only then append our own batch.
            let text = fs::read_to_string(&file)?;
            if text.lines().next() != Some(current_header().as_str()) {
                self.compact_locked(dir, &mut pos)?
            } else {
                self.fold_tail(&text, &mut pos, file_id(&fs::metadata(&file)?));
                let mut out = String::new();
                for (fp, proof) in dirty.iter() {
                    out.push_str(&render_entry(*fp, proof));
                }
                let mut f = fs::OpenOptions::new().append(true).open(&file)?;
                faulted_write(&mut f, out.as_bytes())?;
                f.sync_all()?;
                // The append lands at the true end of file, which may
                // sit past the last complete line `fold_tail` stopped
                // at (a dead peer's torn fragment); skip straight over.
                pos.offset = (text.len() + out.len()) as u64;
                PersistOutcome::Appended(dirty.len())
            }
        };
        dirty.clear();
        *state = DiskState::Clean;
        Ok(outcome)
    }

    /// Rewrites the journal from the full in-memory map, atomically
    /// (temp file + rename), under the advisory lock. Entries appended
    /// by a concurrent process since our load are merged in rather than
    /// clobbered. Rarely needed directly — [`ProofCache::persist`]
    /// compacts on its own when the load found anything untrustworthy —
    /// but exposed for tooling that wants to repair or deduplicate a
    /// journal eagerly.
    ///
    /// # Errors
    ///
    /// Filesystem errors only.
    pub fn compact(&self) -> io::Result<PersistOutcome> {
        let Some(dir) = &self.dir else {
            return Ok(PersistOutcome::Skipped);
        };
        let mut dirty = self.dirty.lock().expect("dirty lock");
        let mut state = self.state.lock().expect("state lock");
        let mut pos = self.pos.lock().expect("pos lock");
        let _lock = filelock::lock_exclusive(&dir.join(LOCK_FILE))?;
        let outcome = self.compact_locked(dir, &mut pos)?;
        dirty.clear();
        *state = DiskState::Clean;
        Ok(outcome)
    }

    /// The compaction body; the caller holds the advisory lock.
    fn compact_locked(&self, dir: &Path, pos: &mut JournalPos) -> io::Result<PersistOutcome> {
        // Merge entries a concurrent writer appended since our load.
        // Only a current-header file contributes; a stale or corrupt
        // prefix was already invalidated at load time and new corruption
        // here would only double-count, so parse failures are skipped
        // silently.
        let file = dir.join(CACHE_FILE);
        let mut merged: HashMap<Fingerprint, CachedProof> = HashMap::new();
        if let Ok(text) = fs::read_to_string(&file) {
            let mut lines = text.lines();
            let current = lines.next().is_some_and(|h| h == current_header());
            if current {
                for line in lines {
                    if let Some((fp, proof)) = parse_entry(line) {
                        merged.insert(fp, proof);
                    }
                }
            }
        }
        {
            // Ours win over the disk's (identical anyway — the prover
            // is deterministic), and peer-only entries are adopted into
            // memory: the cursor jumps to the end of the compacted file
            // below, so this is their only chance to be followed.
            let mut map = self.mem.write().expect("cache lock");
            for (fp, proof) in map.iter() {
                merged.insert(*fp, proof.clone());
            }
            for (fp, proof) in merged.iter() {
                map.entry(*fp).or_insert_with(|| proof.clone());
            }
        }
        let mut entries: Vec<_> = merged.iter().collect();
        entries.sort_by_key(|(fp, _)| **fp);
        let mut out = format!("{}\n", current_header());
        for (fp, proof) in &entries {
            out.push_str(&render_entry(**fp, proof));
        }
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        let write_result = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            faulted_write(&mut f, out.as_bytes())?;
            f.sync_all()
        })();
        if let Err(e) = write_result {
            // A torn or failed temp file must never replace the store.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, &file)?;
        // The compacted file is entirely of our making: the follow
        // cursor jumps straight to its end.
        *pos = JournalPos {
            ino: fs::metadata(&file).map(|m| file_id(&m)).unwrap_or(0),
            offset: out.len() as u64,
        };
        Ok(PersistOutcome::Compacted(entries.len()))
    }

    /// Number of cached entries currently in memory.
    pub fn len(&self) -> usize {
        self.mem.read().expect("cache lock").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits that were served by the journal-follow path: the entry was
    /// absent from memory but a peer process had appended it to the
    /// shared journal since our last scan. A subset of
    /// [`ProofCache::hits`].
    pub fn follow_hits(&self) -> u64 {
        self.follow_hits.load(Ordering::Relaxed)
    }

    /// Entries refused at load time (version/format mismatch, malformed
    /// lines, CRC failures from torn or corrupted writes).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Persist calls that skipped the write because there was nothing
    /// new to save and nothing to repair.
    pub fn persist_skips(&self) -> u64 {
        self.persist_skips.load(Ordering::Relaxed)
    }

    /// Entries recorded since the last successful persist.
    pub fn dirty_len(&self) -> usize {
        self.dirty.lock().expect("dirty lock").len()
    }

    /// The backing directory, when disk-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

/// The exact header line a trustworthy journal must start with.
fn current_header() -> String {
    format!("stq-proof-cache {FORMAT_VERSION} {PROVER_VERSION}")
}

/// The file's identity for journal-follow: the inode on Unix (rename
/// changes it, append does not), a constant elsewhere (follow then
/// degrades to offset-only tracking, still never unsound).
#[cfg(unix)]
fn file_id(meta: &fs::Metadata) -> u64 {
    use std::os::unix::fs::MetadataExt;
    meta.ino()
}

#[cfg(not(unix))]
fn file_id(_meta: &fs::Metadata) -> u64 {
    0
}

/// Writes `bytes`, honouring any injected I/O fault scheduled for this
/// write operation: a full disk writes nothing, a torn write flushes
/// only a prefix; both then fail. See [`stq_logic::fault::IoFaultKind`].
fn faulted_write(f: &mut fs::File, bytes: &[u8]) -> io::Result<()> {
    match fault::next_io_write() {
        Some(IoFaultKind::FullDisk) => Err(io::Error::other("injected fault: disk full")),
        Some(IoFaultKind::TornWrite) => {
            f.write_all(&bytes[..bytes.len() / 2])?;
            f.sync_all()?;
            Err(io::Error::other("injected fault: torn write"))
        }
        None => f.write_all(bytes),
    }
}

/// Renders one journal line: tab-separated fields with a trailing CRC-32
/// of everything before it.
fn render_entry(fp: Fingerprint, proof: &CachedProof) -> String {
    let body = match proof {
        CachedProof::Proved => format!("{fp}\tP"),
        CachedProof::Refuted { model } => {
            let joined: Vec<String> = model.iter().map(|s| escape(s)).collect();
            format!("{fp}\tR\t{}", joined.join("\u{1f}"))
        }
    };
    format!("{body}\t{:08x}\n", crc32(body.as_bytes()))
}

fn parse_entry(line: &str) -> Option<(Fingerprint, CachedProof)> {
    // The CRC is the final tab-separated field; verify it before
    // trusting anything else on the line. A torn line loses (part of)
    // the CRC field, so it fails here.
    let (body, crc_hex) = line.rsplit_once('\t')?;
    if crc_hex.len() != 8 || u32::from_str_radix(crc_hex, 16).ok()? != crc32(body.as_bytes()) {
        return None;
    }
    let mut fields = body.split('\t');
    let fp: Fingerprint = fields.next()?.parse().ok()?;
    match fields.next()? {
        "P" => fields.next().is_none().then_some((fp, CachedProof::Proved)),
        "R" => {
            let payload = fields.next().unwrap_or("");
            let model = if payload.is_empty() {
                Vec::new()
            } else {
                payload.split('\u{1f}').map(unescape).collect()
            };
            fields
                .next()
                .is_none()
                .then_some((fp, CachedProof::Refuted { model }))
        }
        _ => None,
    }
}

// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven and computed at
// compile time — the registry is unreachable, so no `crc32fast` here.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Escapes a countermodel line for the single-line store format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{1f}' => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('u') => out.push('\u{1f}'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Advisory file locking. On Unix this is `flock(2)` on a dedicated lock
/// file — per open file description, so it serializes both distinct
/// processes and distinct `ProofCache` instances inside one process, and
/// it survives the journal itself being renamed by compaction. The lock
/// is released when the guard drops (and by the OS if the process dies).
#[cfg(unix)]
mod filelock {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    // Declared by hand (the registry is unreachable, so no `libc`);
    // flock(2) has had this exact signature and these constants on every
    // Unix Rust targets support.
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;
    const LOCK_UN: i32 = 8;

    /// Holds the lock until dropped.
    pub struct LockGuard {
        file: File,
    }

    /// Blocks until the exclusive lock on `path` is acquired.
    pub fn lock_exclusive(path: &Path) -> io::Result<LockGuard> {
        let file = File::options().create(true).append(true).open(path)?;
        loop {
            if unsafe { flock(file.as_raw_fd(), LOCK_EX) } == 0 {
                return Ok(LockGuard { file });
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    impl Drop for LockGuard {
        fn drop(&mut self) {
            unsafe {
                let _ = flock(self.file.as_raw_fd(), LOCK_UN);
            }
        }
    }
}

/// Non-Unix fallback: no advisory locking. Single-process use stays
/// correct (the in-process mutexes serialize persists); concurrent
/// processes fall back to append-only + CRC recovery, which degrades to
/// re-proving, never to wrong verdicts.
#[cfg(not(unix))]
mod filelock {
    use std::io;
    use std::path::Path;

    pub struct LockGuard;

    pub fn lock_exclusive(_path: &Path) -> io::Result<LockGuard> {
        Ok(LockGuard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_logic::fault::IoFaultPlan;
    use stq_logic::ProverStats;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    fn proved() -> Outcome {
        Outcome::Proved {
            stats: ProverStats::default(),
        }
    }

    fn refuted(model: &[&str]) -> Outcome {
        Outcome::Refuted {
            model: model.iter().map(|s| s.to_string()).collect(),
            stats: ProverStats::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = ProofCache::in_memory();
        assert_eq!(c.lookup(fp(1)), None);
        c.record(fp(1), &proved());
        assert_eq!(c.lookup(fp(1)), Some(CachedProof::Proved));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn inconclusive_outcomes_are_never_cached() {
        let c = ProofCache::in_memory();
        for resource in [
            stq_logic::Resource::Rounds,
            stq_logic::Resource::Time,
            stq_logic::Resource::Cancelled,
        ] {
            c.record(
                fp(2),
                &Outcome::ResourceOut {
                    resource,
                    stats: ProverStats::default(),
                },
            );
        }
        c.record(
            fp(3),
            &Outcome::Crashed {
                message: "boom".into(),
                stats: ProverStats::default(),
            },
        );
        assert!(c.is_empty());
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn disk_round_trip_preserves_entries_and_models() {
        let dir = tmpdir("roundtrip");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(10), &proved());
        c.record(fp(11), &refuted(&["x = 1", "weird\tmodel\nline \\ with \u{1f} bytes"]));
        c.persist().unwrap();

        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.invalidations(), 0);
        assert_eq!(reloaded.lookup(fp(10)), Some(CachedProof::Proved));
        match reloaded.lookup(fp(11)) {
            Some(CachedProof::Refuted { model }) => {
                assert_eq!(model[0], "x = 1");
                assert_eq!(model[1], "weird\tmodel\nline \\ with \u{1f} bytes");
            }
            other => panic!("expected refutation, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_prover_version_is_invalidated_not_trusted() {
        let dir = tmpdir("stale");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE),
            format!(
                "stq-proof-cache {FORMAT_VERSION} stq-prover-0.0.0-ancient\n\
                 {}\tP\n{}\tP\n",
                fp(7),
                fp(8)
            ),
        )
        .unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty(), "stale entries must not load");
        assert_eq!(c.invalidations(), 2);
        assert_eq!(c.lookup(fp(7)), None, "stale entry is re-proved");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_format_files_are_invalidated_wholesale() {
        let dir = tmpdir("v1");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE),
            format!("stq-proof-cache v1 {PROVER_VERSION}\n{}\tP\n", fp(5)),
        )
        .unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.invalidations(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_are_invalidated_individually() {
        let dir = tmpdir("malformed");
        fs::create_dir_all(&dir).unwrap();
        let good = render_entry(fp(20), &CachedProof::Proved);
        fs::write(
            dir.join(CACHE_FILE),
            format!(
                "stq-proof-cache {FORMAT_VERSION} {PROVER_VERSION}\n\
                 {good}not-hex\tP\tdeadbeef\n{}\tX\t00000000\n",
                fp(21)
            ),
        )
        .unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(c.len(), 1, "the good entry survives");
        assert_eq!(c.invalidations(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_is_wholly_invalidated() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CACHE_FILE), "not a cache file at all\n").unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty());
        assert!(c.invalidations() >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_file_counts_as_an_invalidation() {
        let dir = tmpdir("zerolen");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CACHE_FILE), "").unwrap();
        let c = ProofCache::at_dir(&dir).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.invalidations(), 1);
        // The next persist repairs the file even with nothing new.
        assert!(matches!(c.persist(), Ok(PersistOutcome::Compacted(0))));
        let healed = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(healed.invalidations(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_entry_is_recovered_and_counted() {
        let dir = tmpdir("torn-tail");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(30), &proved());
        c.record(fp(31), &refuted(&["x = 1"]));
        c.persist().unwrap();
        // Tear the journal mid-way through its final entry, as a crash
        // or power loss during an append would.
        let file = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&file).unwrap();
        let keep = text.len() - 5;
        fs::write(&file, &text.as_bytes()[..keep]).unwrap();

        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 1, "intact prefix survives");
        assert_eq!(reloaded.invalidations(), 1, "the torn entry is counted");
        // The torn entry is a miss — re-proved, never guessed at.
        assert_eq!(reloaded.lookup(fp(31)), None);
        assert_eq!(reloaded.lookup(fp(30)), Some(CachedProof::Proved));
        // The next persist compacts the corruption away.
        reloaded.record(fp(31), &refuted(&["x = 1"]));
        assert!(matches!(
            reloaded.persist(),
            Ok(PersistOutcome::Compacted(2))
        ));
        let healed = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(healed.invalidations(), 0);
        assert_eq!(healed.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_crc_byte_invalidates_exactly_that_entry() {
        let dir = tmpdir("crc-flip");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(40), &proved());
        c.record(fp(41), &proved());
        c.persist().unwrap();
        let file = dir.join(CACHE_FILE);
        let text = fs::read_to_string(&file).unwrap();
        // Flip one hex digit of the first entry's CRC field.
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let entry = &mut lines[1];
        let crc_start = entry.rfind('\t').unwrap() + 1;
        let old = entry.as_bytes()[crc_start];
        let new = if old == b'0' { b'1' } else { b'0' };
        entry.replace_range(crc_start..crc_start + 1, std::str::from_utf8(&[new]).unwrap());
        fs::write(&file, lines.join("\n") + "\n").unwrap();

        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 1, "only the flipped entry is dropped");
        assert_eq!(reloaded.invalidations(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_skips_when_nothing_is_dirty() {
        let dir = tmpdir("skip");
        let c = ProofCache::at_dir(&dir).unwrap();
        // Fresh dir, nothing proved: no file is written at all.
        assert!(matches!(c.persist(), Ok(PersistOutcome::Skipped)));
        assert_eq!(c.persist_skips(), 1);
        assert!(!dir.join(CACHE_FILE).exists());

        c.record(fp(50), &proved());
        assert!(matches!(c.persist(), Ok(PersistOutcome::Compacted(1))));
        // Nothing new since: the write is skipped, not repeated.
        assert!(matches!(c.persist(), Ok(PersistOutcome::Skipped)));
        assert_eq!(c.persist_skips(), 2);

        // A warm re-run (all hits, no fresh conclusions) also skips.
        let warm = ProofCache::at_dir(&dir).unwrap();
        assert!(warm.lookup(fp(50)).is_some());
        assert!(matches!(warm.persist(), Ok(PersistOutcome::Skipped)));
        assert_eq!(warm.persist_skips(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_entries_append_to_a_clean_journal() {
        let dir = tmpdir("append");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(60), &proved());
        c.persist().unwrap();

        let second = ProofCache::at_dir(&dir).unwrap();
        second.record(fp(61), &refuted(&["y = 0"]));
        assert!(matches!(second.persist(), Ok(PersistOutcome::Appended(1))));
        // Append means the first entry's bytes were not rewritten.
        let text = fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two entries");

        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.invalidations(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_full_disk_fails_cleanly_and_poisons_nothing() {
        let dir = tmpdir("fulldisk");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(70), &proved());
        c.persist().unwrap();

        let second = ProofCache::at_dir(&dir).unwrap();
        second.record(fp(71), &proved());
        fault::install_io(IoFaultPlan::new().inject(0, IoFaultKind::FullDisk));
        let err = second.persist().unwrap_err();
        fault::clear_io();
        assert!(err.to_string().contains("disk full"));
        // Nothing reached the file; the entry stays dirty and a retry
        // saves it.
        assert_eq!(second.dirty_len(), 1);
        let observer = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(observer.len(), 1);
        assert_eq!(observer.invalidations(), 0);
        assert!(matches!(second.persist(), Ok(PersistOutcome::Appended(1))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_append_recovers_to_the_valid_prefix() {
        let dir = tmpdir("torn-append");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(80), &proved());
        c.persist().unwrap();

        let second = ProofCache::at_dir(&dir).unwrap();
        second.record(fp(81), &refuted(&["a = 2", "b = 3"]));
        fault::install_io(IoFaultPlan::new().inject(0, IoFaultKind::TornWrite));
        assert!(second.persist().is_err());
        fault::clear_io();

        // The journal now has a torn tail; loading recovers the valid
        // prefix, counts the tear, and never serves a wrong verdict.
        let reloaded = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(reloaded.lookup(fp(80)), Some(CachedProof::Proved));
        assert_eq!(reloaded.lookup(fp(81)), None, "torn entry re-proves");
        assert_eq!(reloaded.invalidations(), 1);
        // And the recovered cache compacts the tear away on persist.
        reloaded.record(fp(81), &refuted(&["a = 2", "b = 3"]));
        assert!(matches!(
            reloaded.persist(),
            Ok(PersistOutcome::Compacted(2))
        ));
        let healed = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(healed.invalidations(), 0);
        assert_eq!(healed.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_compaction_never_replaces_the_store() {
        let dir = tmpdir("torn-compact");
        let c = ProofCache::at_dir(&dir).unwrap();
        c.record(fp(90), &proved());
        c.persist().unwrap();
        // Corrupt the file so the next persist must compact.
        let file = dir.join(CACHE_FILE);
        let mut text = fs::read_to_string(&file).unwrap();
        text.push_str("torn garbage");
        fs::write(&file, &text).unwrap();

        let second = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(second.invalidations(), 1);
        second.record(fp(91), &proved());
        fault::install_io(IoFaultPlan::new().inject(0, IoFaultKind::TornWrite));
        assert!(second.persist().is_err());
        fault::clear_io();
        // The torn temp file was discarded; the (corrupt but recoverable)
        // store is still exactly what it was.
        assert_eq!(fs::read_to_string(&file).unwrap(), text);
        assert!(matches!(second.persist(), Ok(PersistOutcome::Compacted(2))));
        let healed = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(healed.invalidations(), 0);
        assert_eq!(healed.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_concurrent_writers_never_interleave_entries() {
        let dir = tmpdir("contention");
        // Seed the journal so both writers run in append mode.
        let seed = ProofCache::at_dir(&dir).unwrap();
        seed.record(fp(0), &proved());
        seed.persist().unwrap();

        // Two independent cache instances (modelling two `stqc`
        // processes sharing --cache-dir) append batches of long entries
        // concurrently. The advisory lock must serialize the appends:
        // every line of the final journal parses, nothing interleaves.
        let model: Vec<&str> = vec!["some = countermodel", "with = several", "long = literals"];
        std::thread::scope(|s| {
            for writer in 0..2u128 {
                let dir = &dir;
                let model = &model;
                s.spawn(move || {
                    let c = ProofCache::at_dir(dir).unwrap();
                    for i in 0..25u128 {
                        c.record(fp(1000 + writer * 100 + i), &refuted(model));
                        c.persist().unwrap();
                    }
                });
            }
        });

        let merged = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(merged.invalidations(), 0, "no interleaved/torn lines");
        assert_eq!(merged.len(), 51, "both writers' entries all present");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follow_adopts_a_peer_appended_entry_as_a_warm_hit() {
        let dir = tmpdir("follow");
        // Both caches open the same (initially empty) dir, as two
        // daemons sharing --cache-dir do at startup.
        let a = ProofCache::at_dir(&dir).unwrap();
        let b = ProofCache::at_dir(&dir).unwrap();
        a.record(fp(100), &proved());
        a.record(fp(101), &refuted(&["m = 9"]));
        a.persist().unwrap();

        // b never saw these fingerprints: the in-memory miss re-scans
        // the journal tail and serves them warm.
        assert_eq!(b.lookup(fp(100)), Some(CachedProof::Proved));
        assert_eq!(b.lookup(fp(101)), Some(CachedProof::Refuted { model: vec!["m = 9".into()] }));
        assert_eq!(b.misses(), 0, "follow hits are hits, not misses");
        assert_eq!(b.hits(), 2);
        // One follow pass adopted the whole tail; the second lookup was
        // then an ordinary in-memory hit.
        assert_eq!(b.follow_hits(), 1);
        // A genuinely unknown fingerprint still misses (one stat probe,
        // nothing adopted).
        assert_eq!(b.lookup(fp(102)), None);
        assert_eq!(b.misses(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follow_survives_a_peer_compaction_rename() {
        let dir = tmpdir("follow-compact");
        let a = ProofCache::at_dir(&dir).unwrap();
        a.record(fp(110), &proved());
        a.persist().unwrap();

        let b = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(b.lookup(fp(110)), Some(CachedProof::Proved));

        // Peer a records a fresh entry and compacts: everything lands
        // in a brand-new file (new inode). b's cursor points into the
        // old inode; the follow must detect the rename and re-scan from
        // the top.
        a.record(fp(111), &proved());
        a.compact().unwrap();
        assert_eq!(b.lookup(fp(111)), Some(CachedProof::Proved));
        assert!(b.follow_hits() >= 1);
        assert_eq!(b.misses(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follow_never_adopts_an_incomplete_tail_line() {
        let dir = tmpdir("follow-torn");
        let a = ProofCache::at_dir(&dir).unwrap();
        a.record(fp(120), &proved());
        a.persist().unwrap();
        let b = ProofCache::at_dir(&dir).unwrap();

        // A peer crashes mid-append: the tail has no trailing newline.
        let file = dir.join(CACHE_FILE);
        let entry = render_entry(fp(121), &CachedProof::Proved);
        let torn = &entry[..entry.len() - 3];
        fs::OpenOptions::new()
            .append(true)
            .open(&file)
            .unwrap()
            .write_all(torn.as_bytes())
            .unwrap();
        assert_eq!(b.lookup(fp(121)), None, "incomplete line is not consumed");
        assert_eq!(b.follow_hits(), 0);

        // The line completes later (here: a second append finishing the
        // entry); only now is it adopted.
        fs::OpenOptions::new()
            .append(true)
            .open(&file)
            .unwrap()
            .write_all(&entry.as_bytes()[entry.len() - 3..])
            .unwrap();
        assert_eq!(b.lookup(fp(121)), Some(CachedProof::Proved));
        assert_eq!(b.follow_hits(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follow_refuses_a_journal_swapped_for_a_stale_version() {
        let dir = tmpdir("follow-stale");
        let a = ProofCache::at_dir(&dir).unwrap();
        a.record(fp(130), &proved());
        a.persist().unwrap();
        let b = ProofCache::at_dir(&dir).unwrap();

        // Replace the journal wholesale with a stale-prover file whose
        // entries must not be trusted. rename gives it a new inode, so
        // the follow re-scans — and must refuse the header.
        let file = dir.join(CACHE_FILE);
        let evil = dir.join("evil");
        fs::write(
            &evil,
            format!(
                "stq-proof-cache {FORMAT_VERSION} stq-prover-0.0.0-ancient\n{}",
                render_entry(fp(131), &CachedProof::Proved)
            ),
        )
        .unwrap();
        fs::rename(&evil, &file).unwrap();
        assert_eq!(b.lookup(fp(131)), None);
        assert_eq!(b.follow_hits(), 0);
        // b's own persist compacts the distrusted file back to health.
        b.record(fp(132), &proved());
        b.persist().unwrap();
        let healed = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(healed.lookup(fp(131)), None, "stale entry stays dead");
        assert_eq!(healed.lookup(fp(132)), Some(CachedProof::Proved));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_under_lock_folds_peer_entries_before_writing() {
        let dir = tmpdir("append-fold");
        let seed = ProofCache::at_dir(&dir).unwrap();
        seed.record(fp(140), &proved());
        seed.persist().unwrap();

        // Two clean-loaded caches append in turn; each append must fold
        // the other's entries rather than losing track of the journal.
        let a = ProofCache::at_dir(&dir).unwrap();
        let b = ProofCache::at_dir(&dir).unwrap();
        a.record(fp(141), &proved());
        a.persist().unwrap();
        b.record(fp(142), &proved());
        b.persist().unwrap();
        // b's persist folded a's entry on the way through.
        assert_eq!(b.lookup(fp(141)), Some(CachedProof::Proved));
        assert_eq!(b.misses(), 0);

        let merged = ProofCache::at_dir(&dir).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.invalidations(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_without_dir_is_a_no_op() {
        let c = ProofCache::in_memory();
        c.record(fp(1), &proved());
        assert!(matches!(c.persist(), Ok(PersistOutcome::Skipped)));
        assert_eq!(c.persist_skips(), 0, "in-memory skips are not counted");
        assert!(c.dir().is_none());
    }

    #[test]
    fn escape_unescape_round_trips() {
        for s in ["plain", "tab\there", "nl\nthere", "back\\slash", "\u{1f}sep"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn render_parse_round_trips_and_crc_guards_the_body() {
        let entry = render_entry(fp(7), &CachedProof::Refuted { model: vec!["m".into()] });
        let line = entry.trim_end();
        let (got_fp, got) = parse_entry(line).expect("round trip");
        assert_eq!(got_fp, fp(7));
        assert_eq!(got, CachedProof::Refuted { model: vec!["m".into()] });
        // Any body mutation breaks the CRC.
        let tampered = line.replacen('R', "P", 1);
        assert_eq!(parse_entry(&tampered), None);
    }
}
