//! The soundness-checker driver: generate every obligation for a
//! qualifier, discharge each with the prover under a [`Budget`], and
//! report per-obligation telemetry ([`stq_logic::ProverStats`]) plus
//! aggregate totals ([`SoundnessReport`]).

use crate::axioms::background_theory;
use crate::obligations::{build_obligation, obligation_specs, obligations_for, Obligation, ObligationSpec};
use crate::cache::{CachedProof, ProofCache};
use std::fmt;
use std::time::{Duration, Instant};
use stq_logic::solver::{Outcome, SolverTuning, SolverWorker};
use stq_logic::{fault, Budget, ProverStats, Resource, RetryPolicy};
use stq_qualspec::{QualifierDef, Registry};
use stq_util::{CancelToken, Symbol};

/// The result of one obligation's proof attempt(s).
#[derive(Clone, Debug)]
pub struct ObligationResult {
    /// What the obligation asserts.
    pub description: String,
    /// Whether the prover discharged it.
    pub proved: bool,
    /// The prover's candidate countermodel if the search saturated
    /// without a proof.
    pub countermodel: Vec<String>,
    /// The budget limit that tripped, if the prover ran out of resources
    /// before reaching a verdict (on the *final* attempt).
    pub resource: Option<Resource>,
    /// The contained panic message, if the proof attempt crashed.
    pub crashed: Option<String>,
    /// True when the obligation never ran: the run was cancelled before
    /// a worker picked it up. Skipped results carry zero attempts and
    /// empty stats, and say nothing about the obligation's soundness.
    pub skipped: bool,
    /// Proof attempts run: 1 normally, more when the retry ladder
    /// re-ran a resource-out obligation under escalated budgets.
    pub attempts: u32,
    /// Prover work counters, accumulated across all attempts.
    pub stats: ProverStats,
    /// Wall-clock time for this obligation, across all attempts.
    pub duration: Duration,
}

/// The soundness verdict for one qualifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every obligation was proved.
    Sound,
    /// At least one obligation could not be proved: the type rules may
    /// not guarantee the declared invariant.
    Unsound,
    /// No invariant declared — nothing to check (flow qualifiers are
    /// sound "for free" by subtyping, paper §2.1.4).
    NoInvariant,
    /// At least one obligation exhausted its [`Budget`] (and none was
    /// positively refuted): soundness is undetermined at this budget.
    ResourceOut,
    /// At least one obligation's proof attempt panicked and was contained
    /// (and none was positively refuted): soundness is undetermined
    /// because the prover crashed, not because the obligation failed.
    Crashed,
    /// The run was cancelled (Ctrl-C or an expired run deadline) before
    /// this qualifier got a full verdict: at least one obligation was
    /// skipped outright or interrupted mid-search, and none was
    /// positively refuted or crashed. A partial report must not be read
    /// as exonerating the unreached obligations.
    Interrupted,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Sound => "sound",
            Verdict::Unsound => "NOT proven sound",
            Verdict::NoInvariant => "no invariant (vacuously sound)",
            Verdict::ResourceOut => "undetermined (resource budget exhausted)",
            Verdict::Crashed => "undetermined (prover crashed; crash contained)",
            Verdict::Interrupted => "undetermined (run interrupted before completion)",
        })
    }
}

/// The full soundness report for one qualifier.
#[derive(Clone, Debug)]
pub struct QualReport {
    /// The qualifier checked.
    pub qualifier: Symbol,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Per-obligation results.
    pub obligations: Vec<ObligationResult>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl QualReport {
    /// The failed obligations, if any.
    pub fn failures(&self) -> impl Iterator<Item = &ObligationResult> {
        self.obligations.iter().filter(|o| !o.proved)
    }

    /// Aggregate prover work over every obligation (counters summed,
    /// clause counts maxed; see [`ProverStats::absorb`]).
    pub fn totals(&self) -> ProverStats {
        let mut totals = ProverStats::default();
        for o in &self.obligations {
            totals.absorb(&o.stats);
        }
        totals
    }
}

impl fmt::Display for QualReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "qualifier `{}`: {} ({} obligation(s), {:.3}s)",
            self.qualifier,
            self.verdict,
            self.obligations.len(),
            self.duration.as_secs_f64()
        )?;
        for o in &self.obligations {
            let status = if o.proved {
                "proved"
            } else if o.skipped {
                "SKIPPED"
            } else if o.crashed.is_some() {
                "CRASHED"
            } else if o.resource == Some(Resource::Cancelled) {
                "INTERRUPTED"
            } else if o.resource.is_some() {
                "OUT OF BUDGET"
            } else {
                "FAILED"
            };
            let cached = if o.stats.cache_hits > 0 { " (cached)" } else { "" };
            writeln!(f, "  [{status}{cached}] {}", o.description)?;
            if let Some(message) = &o.crashed {
                writeln!(f, "      panic: {message}")?;
            }
            if let Some(resource) = o.resource {
                let label = if resource == Resource::Cancelled {
                    "stopped"
                } else {
                    "exhausted"
                };
                writeln!(f, "      {label}: {resource}")?;
            }
            if o.attempts > 1 {
                writeln!(f, "      attempts: {}", o.attempts)?;
            }
            if !o.proved {
                for line in &o.countermodel {
                    writeln!(f, "      countermodel: {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Checks the soundness of one qualifier definition against its declared
/// invariant, for all possible programs.
///
/// # Examples
///
/// ```
/// use stq_qualspec::Registry;
/// use stq_soundness::{check_qualifier, Verdict};
///
/// let registry = Registry::builtins();
/// let pos = registry.get_by_name("pos").unwrap();
/// let report = check_qualifier(&registry, pos);
/// assert_eq!(report.verdict, Verdict::Sound);
/// ```
pub fn check_qualifier(registry: &Registry, def: &QualifierDef) -> QualReport {
    check_qualifier_with(registry, def, Budget::default())
}

/// [`check_qualifier`] under an explicit prover [`Budget`], applied to
/// every proof obligation. An obligation that exhausts the budget is
/// recorded with its tripped [`Resource`]; if any obligation does (and
/// none is positively refuted) the verdict is [`Verdict::ResourceOut`].
pub fn check_qualifier_with(registry: &Registry, def: &QualifierDef, budget: Budget) -> QualReport {
    check_qualifier_retrying(registry, def, budget, RetryPolicy::none())
}

/// The fault-isolated heart of the checker: [`check_qualifier_with`]
/// plus a budget-escalation [`RetryPolicy`].
///
/// Every obligation is discharged through
/// [`stq_logic::Problem::prove_isolated`], so a panicking proof attempt —
/// a prover bug or an injected fault — degrades to a `CRASHED` obligation
/// and a [`Verdict::Crashed`] report instead of unwinding through the
/// batch: the remaining obligations (and qualifiers) still get verdicts.
///
/// An obligation that comes back `ResourceOut` is re-run under budgets
/// escalated by `retry.factor` per attempt, up to `retry.max_attempts`
/// total attempts; [`ObligationResult::attempts`] records how many ran,
/// and the stats and duration accumulate across attempts. Refutations and
/// crashes are never retried.
pub fn check_qualifier_retrying(
    registry: &Registry,
    def: &QualifierDef,
    budget: Budget,
    retry: RetryPolicy,
) -> QualReport {
    check_qualifier_cached(registry, def, budget, retry, None)
}

/// [`check_qualifier_retrying`] with an optional [`ProofCache`]: each
/// obligation is fingerprinted and looked up before any proof search
/// runs. A hit replays the cached conclusive outcome with zero attempts
/// ([`ObligationResult::attempts`] is 0 and `stats.cache_hits` is 1); a
/// miss proves as usual, records the conclusive outcome, and marks
/// `stats.cache_misses`.
pub fn check_qualifier_cached(
    registry: &Registry,
    def: &QualifierDef,
    budget: Budget,
    retry: RetryPolicy,
    cache: Option<&ProofCache>,
) -> QualReport {
    let start = Instant::now();
    if def.invariant.is_none() {
        return QualReport {
            qualifier: def.name,
            verdict: Verdict::NoInvariant,
            obligations: Vec::new(),
            duration: start.elapsed(),
        };
    }
    // One resident solver worker serves the whole qualifier: the shared
    // background theory is preprocessed once and reused per obligation.
    let mut worker = SolverWorker::new(background_theory());
    let results: Vec<ObligationResult> = obligations_for(registry, def)
        .into_iter()
        .map(|ob| {
            discharge(&mut worker, ob, budget, retry, cache, &CancelToken::default())
        })
        .collect();
    QualReport {
        qualifier: def.name,
        verdict: verdict_for(&results),
        obligations: results,
        duration: start.elapsed(),
    }
}

/// The result recorded for an obligation the run never reached: zero
/// attempts, empty stats, and no claim about soundness either way.
fn skipped_result(description: String, duration: Duration) -> ObligationResult {
    ObligationResult {
        description,
        proved: false,
        countermodel: Vec::new(),
        resource: None,
        crashed: None,
        skipped: true,
        attempts: 0,
        stats: ProverStats::default(),
        duration,
    }
}

/// Discharges one obligation: proof-cache lookup (when a cache is
/// supplied), then the fault-isolated retry ladder, then cache recording
/// of a conclusive outcome.
///
/// The [`CancelToken`] is cloned into the prover so an in-flight search
/// stops at its next decision-point poll; if the token has already fired
/// before any work starts, the obligation is skipped outright.
///
/// Proof attempts run on the caller's [`SolverWorker`], which keeps a
/// theory-loaded solver core resident across obligations; verdicts and
/// work counters are identical to standalone proving (reuse only skips
/// redundant theory preprocessing — see [`SolverWorker::prove`]).
fn discharge(
    worker: &mut SolverWorker,
    mut ob: Obligation,
    budget: Budget,
    retry: RetryPolicy,
    cache: Option<&ProofCache>,
    cancel: &CancelToken,
) -> ObligationResult {
    let t0 = Instant::now();
    if cancel.should_stop() {
        return skipped_result(ob.description, t0.elapsed());
    }
    let fp = cache.map(|_| {
        // Fingerprint under the *base* budget: the retry ladder is part
        // of the key separately, so escalated attempts don't fragment it.
        ob.problem.config = budget;
        ob.problem.fingerprint(retry)
    });
    if let (Some(cache), Some(fp)) = (cache, fp) {
        if let Some(proof) = cache.lookup(fp) {
            let (proved, countermodel) = match proof {
                CachedProof::Proved => (true, Vec::new()),
                CachedProof::Refuted { model } => (false, model),
            };
            return ObligationResult {
                description: ob.description,
                proved,
                countermodel,
                resource: None,
                crashed: None,
                skipped: false,
                attempts: 0,
                stats: ProverStats {
                    cache_hits: 1,
                    ..ProverStats::default()
                },
                duration: t0.elapsed(),
            };
        }
    }
    ob.problem.cancel = cancel.clone();
    let mut attempts = 0u32;
    let mut total = ProverStats::default();
    let outcome = loop {
        attempts += 1;
        ob.problem.config = retry.budget_for(budget, attempts);
        let outcome = worker.prove_isolated(&ob.problem);
        total.absorb(outcome.stats());
        // A fired token also stops the ladder: escalated re-attempts
        // would each be cancelled again at their first poll.
        if outcome.is_resource_out() && attempts < retry.attempt_cap() && !cancel.should_stop() {
            continue;
        }
        break outcome;
    };
    if let (Some(cache), Some(fp)) = (cache, fp) {
        total.cache_misses += 1;
        cache.record(fp, &outcome);
    }
    let proved = outcome.is_proved();
    let (countermodel, resource, crashed) = match outcome {
        Outcome::Proved { .. } => (Vec::new(), None, None),
        Outcome::Refuted { model, .. } => (model, None, None),
        Outcome::ResourceOut { resource, .. } => (Vec::new(), Some(resource), None),
        Outcome::Crashed { message, .. } => (Vec::new(), None, Some(message)),
    };
    ObligationResult {
        description: ob.description,
        proved,
        countermodel,
        resource,
        crashed,
        skipped: false,
        attempts,
        stats: total,
        duration: t0.elapsed(),
    }
}

/// The qualifier verdict implied by its obligation results: refutation
/// outranks a crash outranks an interruption outranks a budget
/// exhaustion outranks soundness. Interruption (a skipped obligation or
/// one cancelled mid-search) outranks `ResourceOut` because it says the
/// *run* stopped, not that the budget was too small.
fn verdict_for(results: &[ObligationResult]) -> Verdict {
    let refuted = |o: &ObligationResult| {
        !o.proved && !o.skipped && o.crashed.is_none() && o.resource.is_none()
    };
    let interrupted =
        |o: &ObligationResult| o.skipped || o.resource == Some(Resource::Cancelled);
    if results.iter().any(refuted) {
        Verdict::Unsound
    } else if results.iter().any(|o| o.crashed.is_some()) {
        Verdict::Crashed
    } else if results.iter().any(interrupted) {
        Verdict::Interrupted
    } else if results.iter().any(|o| o.resource.is_some()) {
        Verdict::ResourceOut
    } else {
        Verdict::Sound
    }
}

/// Checks every qualifier in the registry.
pub fn check_all(registry: &Registry) -> Vec<QualReport> {
    registry
        .iter()
        .map(|def| check_qualifier(registry, def))
        .collect()
}

/// The full soundness run over a registry: per-qualifier reports plus
/// aggregate prover telemetry.
#[derive(Clone, Debug)]
pub struct SoundnessReport {
    /// One report per qualifier, in registry order.
    pub reports: Vec<QualReport>,
    /// The budget every obligation ran under (first attempt; retries
    /// escalate from here).
    pub budget: Budget,
    /// The escalation ladder the run used ([`RetryPolicy::none`] when
    /// retries were disabled).
    pub retry: RetryPolicy,
    /// Aggregate prover work across all qualifiers and obligations
    /// (including proof-cache hit/miss/invalidation counters when the
    /// run used a cache).
    pub totals: ProverStats,
    /// Total wall-clock time for the whole run.
    pub duration: Duration,
    /// Worker threads the run was allowed (1 = sequential).
    pub jobs: usize,
}

impl SoundnessReport {
    /// True if no qualifier was found unsound or ran out of budget.
    pub fn all_sound(&self) -> bool {
        self.reports
            .iter()
            .all(|r| matches!(r.verdict, Verdict::Sound | Verdict::NoInvariant))
    }

    /// Total number of obligations across all qualifiers.
    pub fn obligation_count(&self) -> usize {
        self.reports.iter().map(|r| r.obligations.len()).sum()
    }

    /// Total proof attempts across all obligations: more than the
    /// obligation count when the retry ladder re-ran something, *less*
    /// when the proof cache served obligations without any attempt.
    pub fn attempt_count(&self) -> u64 {
        self.reports
            .iter()
            .flat_map(|r| &r.obligations)
            .map(|o| u64::from(o.attempts))
            .sum()
    }

    /// Obligations that actually ran a proof search (attempts ≥ 1); the
    /// rest were served from the proof cache.
    pub fn reproved_count(&self) -> usize {
        self.reports
            .iter()
            .flat_map(|r| &r.obligations)
            .filter(|o| o.attempts > 0 && !o.skipped)
            .count()
    }

    fn obligation_results(&self) -> impl Iterator<Item = &ObligationResult> {
        self.reports.iter().flat_map(|r| &r.obligations)
    }

    /// True when the run was cut short: some obligation was skipped
    /// before running or cancelled mid-search. A partial report carries
    /// every verdict reached so far but proves nothing about the rest.
    pub fn interrupted(&self) -> bool {
        self.obligation_results()
            .any(|o| o.skipped || o.resource == Some(Resource::Cancelled))
    }

    /// Obligations the cancelled run never started.
    pub fn skipped_count(&self) -> usize {
        self.obligation_results().filter(|o| o.skipped).count()
    }

    /// Obligations that exhausted their *wall-clock* budget
    /// ([`Resource::Time`]): a deadline fired, regardless of how much
    /// step budget remained.
    pub fn timed_out_count(&self) -> usize {
        self.obligation_results()
            .filter(|o| o.resource == Some(Resource::Time))
            .count()
    }

    /// Obligations that exhausted a *step* budget (decisions, rounds,
    /// instantiations, clauses, or an injected exhaustion) — any
    /// resource limit that is not wall-clock time and not an external
    /// cancellation.
    pub fn step_out_count(&self) -> usize {
        self.obligation_results()
            .filter(|o| {
                matches!(
                    o.resource,
                    Some(r) if r != Resource::Time && r != Resource::Cancelled
                )
            })
            .count()
    }
}

impl fmt::Display for SoundnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.reports {
            write!(f, "{r}")?;
        }
        if self.interrupted() {
            writeln!(
                f,
                "INTERRUPTED: partial report; {} obligation(s) never ran",
                self.skipped_count()
            )?;
        }
        writeln!(
            f,
            "totals: {} obligation(s), {} in {:.3}s",
            self.obligation_count(),
            self.totals,
            self.duration.as_secs_f64()
        )
    }
}

/// [`check_all`] under an explicit [`Budget`], aggregated into a
/// [`SoundnessReport`].
pub fn check_all_with(registry: &Registry, budget: Budget) -> SoundnessReport {
    check_all_retrying(registry, budget, RetryPolicy::none())
}

/// [`check_all_with`] with a budget-escalation [`RetryPolicy`]; see
/// [`check_qualifier_retrying`] for the per-obligation semantics.
pub fn check_all_retrying(
    registry: &Registry,
    budget: Budget,
    retry: RetryPolicy,
) -> SoundnessReport {
    let start = Instant::now();
    let reports: Vec<QualReport> = registry
        .iter()
        .map(|def| check_qualifier_retrying(registry, def, budget, retry))
        .collect();
    let mut totals = ProverStats::default();
    for r in &reports {
        totals.absorb(&r.totals());
    }
    SoundnessReport {
        reports,
        budget,
        retry,
        totals,
        duration: start.elapsed(),
        jobs: 1,
    }
}

/// [`check_all_retrying`] over a work-stealing thread pool: the same
/// obligations, discharged by up to `jobs` workers, reassembled into the
/// same deterministic registry-ordered report. With `jobs <= 1` the run
/// is exactly sequential (no pool, no worker threads).
///
/// Determinism: obligation-level results are index-addressed, so
/// verdicts, obligation order, countermodels, attempts, and work
/// counters are identical to the sequential run — only wall-clock fields
/// (and, under fault injection, *which* solver entry draws a scheduled
/// index) depend on scheduling. An installed [`fault`] plan is shared
/// with the workers via [`fault::handle`]/[`fault::adopt`], so entry
/// numbering stays global and an injected fault fires exactly once.
pub fn check_all_parallel(
    registry: &Registry,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
) -> SoundnessReport {
    check_all_pipeline(registry, budget, retry, jobs, None)
}

/// The full pipeline: [`check_all_parallel`] plus an optional
/// [`ProofCache`] consulted per obligation (see
/// [`check_qualifier_cached`] for hit/miss semantics). The cache's
/// load-time invalidation count is folded into
/// [`SoundnessReport::totals`].
pub fn check_all_pipeline(
    registry: &Registry,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
) -> SoundnessReport {
    let defs: Vec<&QualifierDef> = registry.iter().collect();
    check_defs_pipeline(registry, &defs, budget, retry, jobs, cache)
}

/// [`check_all_pipeline`] under a [`CancelToken`]: the whole-registry
/// entry point for deadline-bounded and Ctrl-C-interruptible runs.
pub fn check_all_pipeline_cancellable(
    registry: &Registry,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
    cancel: &CancelToken,
) -> SoundnessReport {
    let defs: Vec<&QualifierDef> = registry.iter().collect();
    check_defs_pipeline_cancellable(registry, &defs, budget, retry, jobs, cache, cancel)
}

/// [`check_all_pipeline`] over an explicit subset of definitions (the
/// CLI's `prove foo bar` path), in the given order.
pub fn check_defs_pipeline(
    registry: &Registry,
    defs: &[&QualifierDef],
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
) -> SoundnessReport {
    check_defs_pipeline_cancellable(
        registry,
        defs,
        budget,
        retry,
        jobs,
        cache,
        &CancelToken::default(),
    )
}

/// [`check_defs_pipeline`] under a [`CancelToken`]: workers poll the
/// token before taking each obligation and the prover polls it at its
/// decision points, so a fired token ends the run at the next safepoint.
/// Obligations the pool never reached come back as skipped results
/// (zero attempts, no stats), an obligation interrupted mid-search
/// records [`Resource::Cancelled`], and any of either makes the report
/// [`SoundnessReport::interrupted`]. Conclusive outcomes reached before
/// the cancellation are still recorded in the cache as usual, so an
/// interrupted run resumes from where it stopped.
#[allow(clippy::too_many_arguments)]
pub fn check_defs_pipeline_cancellable(
    registry: &Registry,
    defs: &[&QualifierDef],
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
    cancel: &CancelToken,
) -> SoundnessReport {
    check_defs_pipeline_cancellable_tuned(
        registry,
        defs,
        budget,
        retry,
        jobs,
        cache,
        cancel,
        SolverTuning::default(),
    )
}

/// [`check_all_pipeline`] with an explicit [`SolverTuning`], for ablation
/// benchmarks: `SolverTuning::legacy()` reproduces the pre-optimization
/// cold path (per-obligation theory preprocessing, tree-walk matching).
pub fn check_all_pipeline_tuned(
    registry: &Registry,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
    tuning: SolverTuning,
) -> SoundnessReport {
    let defs: Vec<&QualifierDef> = registry.iter().collect();
    check_defs_pipeline_cancellable_tuned(
        registry,
        &defs,
        budget,
        retry,
        jobs,
        cache,
        &CancelToken::default(),
        tuning,
    )
}

/// [`check_defs_pipeline_cancellable`] with an explicit [`SolverTuning`]
/// applied to every obligation. Tuning never changes verdicts, search
/// traces, or cache fingerprints — only how much preprocessing and
/// interning work the prover repeats — so every tuning produces the same
/// report modulo wall-clock and the theory-prep/interning telemetry.
#[allow(clippy::too_many_arguments)]
pub fn check_defs_pipeline_cancellable_tuned(
    registry: &Registry,
    defs: &[&QualifierDef],
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache: Option<&ProofCache>,
    cancel: &CancelToken,
    tuning: SolverTuning,
) -> SoundnessReport {
    let start = Instant::now();
    let jobs = jobs.max(1);
    // Flatten to obligation-level tasks so one wide qualifier cannot
    // serialise the pool; the (qualifier index, task index) pairing puts
    // every result back in its deterministic slot afterwards. Tasks are
    // lightweight *specs* — each worker materializes the obligation's
    // formulas itself, so obligation generation parallelizes along with
    // the proving instead of running sequentially up front.
    let mut tasks: Vec<(usize, ObligationSpec)> = Vec::new();
    for (qi, def) in defs.iter().enumerate() {
        if def.invariant.is_some() {
            for spec in obligation_specs(def) {
                tasks.push((qi, spec));
            }
        }
    }
    // Capture each task's slot and description up front: a task the
    // cancelled pool never reached comes back `None`, and its skipped
    // placeholder still needs both.
    let meta: Vec<(usize, String)> = tasks
        .iter()
        .map(|(qi, spec)| (*qi, spec.description.clone()))
        .collect();
    let fault_handle = fault::handle();
    let slots = stq_util::pool::run_indexed_stateful_cancellable(
        jobs,
        tasks,
        cancel,
        || {
            fault::adopt(fault_handle.clone());
            // Each worker keeps one theory-loaded solver resident for its
            // whole batch; obligations that carry the shared background
            // theory reuse it instead of re-preprocessing the axioms.
            SolverWorker::new(background_theory())
        },
        |worker, _, (qi, spec)| {
            let mut ob = build_obligation(registry, defs[qi], &spec);
            ob.problem.tuning = tuning;
            discharge(worker, ob, budget, retry, cache, cancel)
        },
    );
    let mut per_qual: Vec<Vec<ObligationResult>> = defs.iter().map(|_| Vec::new()).collect();
    for ((qi, description), slot) in meta.into_iter().zip(slots) {
        per_qual[qi].push(match slot {
            Some(result) => result,
            None => skipped_result(description, Duration::ZERO),
        });
    }
    let reports: Vec<QualReport> = defs
        .iter()
        .zip(per_qual)
        .map(|(def, obligations)| {
            if def.invariant.is_none() {
                QualReport {
                    qualifier: def.name,
                    verdict: Verdict::NoInvariant,
                    obligations: Vec::new(),
                    duration: Duration::ZERO,
                }
            } else {
                // Per-qualifier wall clock is meaningless when workers
                // interleave qualifiers; report the obligations' summed
                // proof time instead.
                let duration = obligations.iter().map(|o| o.duration).sum();
                QualReport {
                    qualifier: def.name,
                    verdict: verdict_for(&obligations),
                    obligations,
                    duration,
                }
            }
        })
        .collect();
    let mut totals = ProverStats::default();
    for r in &reports {
        totals.absorb(&r.totals());
    }
    if let Some(cache) = cache {
        totals.cache_invalidations += cache.invalidations();
    }
    SoundnessReport {
        reports,
        budget,
        retry,
        totals,
        duration: start.elapsed(),
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_report(name: &str) -> QualReport {
        let registry = Registry::builtins();
        let def = registry.get_by_name(name).expect("builtin exists");
        check_qualifier(&registry, def)
    }

    #[test]
    fn pos_is_sound() {
        let r = builtin_report("pos");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        assert_eq!(r.obligations.len(), 3);
    }

    #[test]
    fn neg_is_sound() {
        let r = builtin_report("neg");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
    }

    #[test]
    fn nonzero_is_sound() {
        let r = builtin_report("nonzero");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // Four case clauses; the restrict clause generates no obligation.
        assert_eq!(r.obligations.len(), 4);
    }

    #[test]
    fn nonnull_is_sound() {
        let r = builtin_report("nonnull");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        assert_eq!(r.obligations.len(), 1);
    }

    #[test]
    fn flow_qualifiers_have_no_obligations() {
        let r = builtin_report("untainted");
        assert_eq!(r.verdict, Verdict::NoInvariant);
        let r = builtin_report("tainted");
        assert_eq!(r.verdict, Verdict::NoInvariant);
    }

    #[test]
    fn unique_is_sound() {
        let r = builtin_report("unique");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // Two assign forms + four preservation cases.
        assert_eq!(r.obligations.len(), 6);
    }

    #[test]
    fn unaliased_is_sound() {
        let r = builtin_report("unaliased");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // ondecl + four preservation cases.
        assert_eq!(r.obligations.len(), 5);
    }

    #[test]
    fn erroneous_pos_with_subtraction_is_rejected() {
        // The paper's running example (§2.1.3): replacing E1 * E2 with
        // E1 - E2 must make the soundness check fail.
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier neg(int Expr E)
                    case E of
                        decl int Const C: C, where C < 0
                    invariant value(E) < 0",
            )
            .unwrap();
        registry
            .add_source(
                "value qualifier pos(int Expr E)
                    case E of
                        decl int Const C:
                            C, where C > 0
                      | decl int Expr E1, E2:
                            E1 - E2, where pos(E1) && pos(E2)
                      | decl int Expr E1:
                            -E1, where neg(E1)
                    invariant value(E) > 0",
            )
            .unwrap();
        let def = registry.get_by_name("pos").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound);
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].description.contains("E1 - E2"));
        assert!(!failures[0].countermodel.is_empty());
    }

    #[test]
    fn unique_without_disallow_is_rejected() {
        // §2.2.3: omitting the disallow clause makes preservation fail
        // for the "store the value of l in l'" case.
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unique(T* LValue L)
                    assign L NULL | new
                    invariant value(L) == NULL ||
                        (isHeapLoc(value(L)) &&
                         forall T** P: *P == value(L) => P == location(L))",
            )
            .unwrap();
        let def = registry.get_by_name("unique").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        let failing: Vec<_> = report.failures().collect();
        assert!(failing
            .iter()
            .any(|o| o.description.contains("read from memory")));
        // The establishment obligations still hold.
        assert!(report
            .obligations
            .iter()
            .filter(|o| o.description.contains("assign form"))
            .all(|o| o.proved));
    }

    #[test]
    fn unaliased_without_disallow_is_rejected() {
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unaliased(T Var X)
                    ondecl
                    invariant forall T** P: *P != location(X)",
            )
            .unwrap();
        let def = registry.get_by_name("unaliased").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        assert!(report
            .failures()
            .any(|o| o.description.contains("address-of")));
    }

    #[test]
    fn unique_with_const_assign_is_rejected() {
        // Allowing arbitrary constants to be assigned to a unique pointer
        // would not establish the invariant (a constant is not NULL and
        // not a fresh heap location).
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unique(T* LValue L)
                    assign L NULL | new | const
                    disallow L
                    invariant value(L) == NULL ||
                        (isHeapLoc(value(L)) &&
                         forall T** P: *P == value(L) => P == location(L))",
            )
            .unwrap();
        let def = registry.get_by_name("unique").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        assert!(report.failures().any(|o| o.description.contains("const")));
    }

    #[test]
    fn check_all_builtins() {
        let registry = Registry::builtins();
        let reports = check_all(&registry);
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_ne!(r.verdict, Verdict::Unsound, "{r}");
        }
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        // Claiming value(E) > 1 for pos's rules must fail: the constant 1
        // satisfies C > 0 but not the claimed invariant... encoded via a
        // fresh qualifier to keep the registry consistent.
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier big(int Expr E)
                    case E of
                        decl int Const C: C, where C > 0
                    invariant value(E) > 1",
            )
            .unwrap();
        let def = registry.get_by_name("big").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound);
    }

    #[test]
    fn builtin_proof_stats_are_nonzero() {
        // Fig. 12 qualifiers: every discharged obligation must show real
        // prover work — refuting anything takes at least one conflict,
        // and the clause database is never empty.
        for name in ["pos", "neg", "nonzero", "nonnull", "unique", "unaliased"] {
            let r = builtin_report(name);
            assert!(!r.obligations.is_empty(), "{name} has obligations");
            for o in &r.obligations {
                assert!(o.proved, "{name}: {}", o.description);
                assert!(o.stats.conflicts >= 1, "{name}: {}", o.description);
                assert!(o.stats.clauses >= 1, "{name}: {}", o.description);
                assert!(o.stats.rounds >= 1, "{name}: {}", o.description);
            }
        }
        // The reference qualifiers quantify over aliases, so their
        // proofs must do instantiation work.
        for name in ["unique", "unaliased"] {
            let r = builtin_report(name);
            assert!(r.totals().instantiations > 0, "{name}");
            assert!(r.totals().decisions > 0, "{name}");
        }
    }

    #[test]
    fn totals_aggregate_per_obligation_stats() {
        let r = builtin_report("unique");
        let totals = r.totals();
        let decision_sum: u64 = r.obligations.iter().map(|o| o.stats.decisions).sum();
        let inst_sum: usize = r.obligations.iter().map(|o| o.stats.instantiations).sum();
        assert_eq!(totals.decisions, decision_sum);
        assert_eq!(totals.instantiations, inst_sum);
    }

    #[test]
    fn stats_grow_monotonically_with_the_round_budget() {
        // The prover is deterministic, and a larger round budget extends
        // the identical prefix of work, so every counter is monotone in
        // the budget.
        let registry = Registry::builtins();
        let def = registry.get_by_name("unique").unwrap();
        let small = check_qualifier_with(
            &registry,
            def,
            Budget {
                max_rounds: 2,
                ..Budget::default()
            },
        );
        let full = check_qualifier_with(&registry, def, Budget::default());
        assert_eq!(full.verdict, Verdict::Sound);
        let (s, f) = (small.totals(), full.totals());
        assert!(s.instantiations <= f.instantiations);
        assert!(s.decisions <= f.decisions);
        assert!(s.rounds <= f.rounds);
    }

    #[test]
    fn starved_budget_reports_resource_out_not_unsound() {
        let registry = Registry::builtins();
        let def = registry.get_by_name("unique").unwrap();
        let report = check_qualifier_with(
            &registry,
            def,
            Budget {
                max_rounds: 1,
                max_instantiations: 1,
                ..Budget::default()
            },
        );
        assert_eq!(report.verdict, Verdict::ResourceOut, "{report}");
        let out: Vec<_> = report
            .obligations
            .iter()
            .filter(|o| o.resource.is_some())
            .collect();
        assert!(!out.is_empty());
        let shown = report.to_string();
        assert!(shown.contains("OUT OF BUDGET"), "{shown}");
    }

    #[test]
    fn check_all_with_aggregates_the_registry() {
        let registry = Registry::builtins();
        let report = check_all_with(&registry, Budget::default());
        assert_eq!(report.reports.len(), 8);
        assert!(report.all_sound(), "{report}");
        assert!(report.obligation_count() >= 19);
        assert!(report.totals.decisions > 0);
        let shown = report.to_string();
        assert!(shown.contains("totals:"), "{shown}");
    }

    #[test]
    fn report_display_is_informative() {
        let registry = Registry::builtins();
        let def = registry.get_by_name("pos").unwrap();
        let report = check_qualifier(&registry, def);
        let shown = report.to_string();
        assert!(shown.contains("qualifier `pos`"));
        assert!(shown.contains("sound"));
        assert!(shown.contains("E1 * E2"));
    }

    #[test]
    fn injected_crash_degrades_one_obligation_not_the_batch() {
        use stq_logic::fault::{self, FaultKind, FaultPlan};
        let registry = Registry::builtins();
        let def = registry.get_by_name("unique").unwrap();
        // unique has 6 obligations; crash the third proof attempt.
        fault::install(FaultPlan::new().inject(2, FaultKind::Panic));
        let report = check_qualifier(&registry, def);
        fault::clear();
        assert_eq!(report.verdict, Verdict::Crashed, "{report}");
        assert_eq!(report.obligations.len(), 6, "every obligation has a verdict");
        let crashed: Vec<_> = report
            .obligations
            .iter()
            .filter(|o| o.crashed.is_some())
            .collect();
        assert_eq!(crashed.len(), 1);
        assert!(crashed[0]
            .crashed
            .as_deref()
            .unwrap()
            .contains("injected panic"));
        // The other five still proved, and the display names the crash.
        assert_eq!(report.obligations.iter().filter(|o| o.proved).count(), 5);
        let shown = report.to_string();
        assert!(shown.contains("[CRASHED]"), "{shown}");
        assert!(shown.contains("crash contained"), "{shown}");
    }

    #[test]
    fn refutation_outranks_crash_in_the_verdict() {
        use stq_logic::fault::{self, FaultKind, FaultPlan};
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier big(int Expr E)
                    case E of
                        decl int Const C: C, where C > 0
                    invariant value(E) > 1",
            )
            .unwrap();
        let def = registry.get_by_name("big").unwrap();
        // Crash an attempt that doesn't exist (entry 9): verdict from the
        // real refutation.
        fault::install(FaultPlan::new().inject(9, FaultKind::Panic));
        let report = check_qualifier(&registry, def);
        fault::clear();
        assert_eq!(report.verdict, Verdict::Unsound);
    }

    #[test]
    fn retry_ladder_converts_injected_resource_out_into_proved() {
        use stq_logic::fault::{self, FaultKind, FaultPlan};
        let registry = Registry::builtins();
        let def = registry.get_by_name("pos").unwrap();
        // Force the first attempt of obligation 0 out of budget; the
        // escalated second attempt runs clean.
        fault::install(FaultPlan::new().inject(0, FaultKind::ResourceOut));
        let report = check_qualifier_retrying(
            &registry,
            def,
            Budget::default(),
            RetryPolicy::attempts(3),
        );
        fault::clear();
        assert_eq!(report.verdict, Verdict::Sound, "{report}");
        assert_eq!(report.obligations[0].attempts, 2);
        assert!(report.obligations[0].proved);
        assert!(report.obligations[1..].iter().all(|o| o.attempts == 1));
    }

    #[test]
    fn without_retry_injected_resource_out_is_terminal() {
        use stq_logic::fault::{self, FaultKind, FaultPlan};
        let registry = Registry::builtins();
        let def = registry.get_by_name("pos").unwrap();
        fault::install(FaultPlan::new().inject(0, FaultKind::ResourceOut));
        let report = check_qualifier(&registry, def);
        fault::clear();
        assert_eq!(report.verdict, Verdict::ResourceOut);
        assert_eq!(report.obligations[0].resource, Some(Resource::Injected));
        assert_eq!(report.obligations[0].attempts, 1);
    }

    #[test]
    fn retry_ladder_escalates_a_genuinely_starved_budget_to_success() {
        // A budget too small for unique's obligations, rescued by
        // geometric escalation — the real (non-injected) retry path.
        let registry = Registry::builtins();
        let def = registry.get_by_name("unique").unwrap();
        let starved = Budget {
            max_rounds: 1,
            max_instantiations: 1,
            ..Budget::default()
        };
        let no_retry = check_qualifier_with(&registry, def, starved);
        assert_eq!(no_retry.verdict, Verdict::ResourceOut);
        let retried = check_qualifier_retrying(
            &registry,
            def,
            starved,
            RetryPolicy {
                max_attempts: 8,
                factor: 4,
            },
        );
        assert_eq!(retried.verdict, Verdict::Sound, "{retried}");
        assert!(retried.obligations.iter().any(|o| o.attempts > 1));
        let shown = retried.to_string();
        assert!(shown.contains("attempts:"), "{shown}");
    }

    #[test]
    fn check_all_retrying_records_the_policy_and_attempts() {
        let registry = Registry::builtins();
        let report = check_all_retrying(&registry, Budget::default(), RetryPolicy::attempts(3));
        assert_eq!(report.retry.max_attempts, 3);
        assert!(report.all_sound(), "{report}");
        // Nothing ran out, so nothing retried.
        assert_eq!(report.attempt_count(), report.obligation_count() as u64);
    }

    fn fake_result(description: &str) -> ObligationResult {
        ObligationResult {
            description: description.to_string(),
            proved: false,
            countermodel: Vec::new(),
            resource: None,
            crashed: None,
            skipped: false,
            attempts: 1,
            stats: ProverStats::default(),
            duration: Duration::ZERO,
        }
    }

    #[test]
    fn pre_cancelled_token_skips_every_obligation() {
        let registry = Registry::builtins();
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = check_all_pipeline_cancellable(
            &registry,
            Budget::default(),
            RetryPolicy::none(),
            2,
            None,
            &cancel,
        );
        assert!(report.interrupted());
        assert_eq!(report.skipped_count(), report.obligation_count());
        assert_eq!(report.attempt_count(), 0);
        for r in &report.reports {
            if r.obligations.is_empty() {
                assert_eq!(r.verdict, Verdict::NoInvariant);
            } else {
                assert_eq!(r.verdict, Verdict::Interrupted, "{r}");
                assert!(r.obligations.iter().all(|o| o.skipped));
            }
        }
        let shown = report.to_string();
        assert!(shown.contains("[SKIPPED]"), "{shown}");
        assert!(shown.contains("INTERRUPTED: partial report"), "{shown}");
    }

    #[test]
    fn expired_token_deadline_interrupts_the_run() {
        let registry = Registry::builtins();
        let cancel = CancelToken::deadline_in(Duration::ZERO);
        let report = check_all_pipeline_cancellable(
            &registry,
            Budget::default(),
            RetryPolicy::none(),
            1,
            None,
            &cancel,
        );
        assert!(report.interrupted());
        assert_eq!(report.skipped_count(), report.obligation_count());
    }

    #[test]
    fn default_token_pipeline_matches_the_plain_pipeline() {
        let registry = Registry::builtins();
        let plain = check_all_pipeline(&registry, Budget::default(), RetryPolicy::none(), 2, None);
        let cancellable = check_all_pipeline_cancellable(
            &registry,
            Budget::default(),
            RetryPolicy::none(),
            2,
            None,
            &CancelToken::default(),
        );
        assert!(!cancellable.interrupted());
        assert_eq!(cancellable.skipped_count(), 0);
        let verdicts = |r: &SoundnessReport| -> Vec<Verdict> {
            r.reports.iter().map(|q| q.verdict).collect()
        };
        assert_eq!(verdicts(&plain), verdicts(&cancellable));
        assert_eq!(plain.obligation_count(), cancellable.obligation_count());
    }

    #[test]
    fn interruption_outranks_resource_out_but_not_crash_or_refutation() {
        let skipped = skipped_result("never ran".to_string(), Duration::ZERO);
        let cancelled = ObligationResult {
            resource: Some(Resource::Cancelled),
            ..fake_result("stopped mid-search")
        };
        let out = ObligationResult {
            resource: Some(Resource::Decisions),
            ..fake_result("out of budget")
        };
        let crashed = ObligationResult {
            crashed: Some("boom".to_string()),
            ..fake_result("panicked")
        };
        let refuted = fake_result("countermodel found");
        let proved = ObligationResult {
            proved: true,
            ..fake_result("fine")
        };
        assert_eq!(verdict_for(&[proved.clone(), skipped.clone()]), Verdict::Interrupted);
        assert_eq!(verdict_for(&[out.clone(), skipped.clone()]), Verdict::Interrupted);
        assert_eq!(verdict_for(&[proved.clone(), cancelled]), Verdict::Interrupted);
        assert_eq!(verdict_for(&[crashed, skipped.clone()]), Verdict::Crashed);
        assert_eq!(verdict_for(&[refuted, skipped]), Verdict::Unsound);
        assert_eq!(verdict_for(&[proved.clone(), out]), Verdict::ResourceOut);
        assert_eq!(verdict_for(&[proved]), Verdict::Sound);
    }

    #[test]
    fn timed_out_and_step_out_counters_split_by_resource() {
        let registry = Registry::builtins();
        let def = registry.get_by_name("unique").unwrap();
        let starved = Budget {
            max_rounds: 1,
            max_instantiations: 1,
            ..Budget::default()
        };
        let report =
            check_defs_pipeline(&registry, &[def], starved, RetryPolicy::none(), 1, None);
        assert_eq!(report.timed_out_count(), 0);
        assert!(report.step_out_count() > 0);
        assert!(!report.interrupted());
    }

    #[test]
    fn conclusive_results_before_cancellation_reach_the_cache() {
        // Discharge one obligation before the token fires and the rest
        // after: the conclusive result persists, the skipped ones don't,
        // and a resumed run replays the conclusive prefix as cache hits.
        let dir = std::env::temp_dir().join(format!(
            "stq-cancel-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::builtins();
        let def = registry.get_by_name("pos").unwrap();
        let cache = ProofCache::at_dir(&dir).unwrap();
        let cancel = CancelToken::new();
        let mut worker = SolverWorker::new(background_theory());
        let mut obs = obligations_for(&registry, def).into_iter();
        let first = discharge(
            &mut worker,
            obs.next().unwrap(),
            Budget::default(),
            RetryPolicy::none(),
            Some(&cache),
            &cancel,
        );
        assert!(first.proved && !first.skipped);
        cancel.cancel();
        for ob in obs {
            let r = discharge(
                &mut worker,
                ob,
                Budget::default(),
                RetryPolicy::none(),
                Some(&cache),
                &cancel,
            );
            assert!(r.skipped, "post-cancel obligations are skipped: {}", r.description);
            assert_eq!(r.attempts, 0);
        }
        cache.persist().unwrap();
        // A fresh full run over the same store replays the proved
        // obligation as a hit and finishes the rest.
        let warm = ProofCache::at_dir(&dir).unwrap();
        let resumed = check_defs_pipeline(
            &registry,
            &[def],
            Budget::default(),
            RetryPolicy::none(),
            1,
            Some(&warm),
        );
        assert_eq!(resumed.reports[0].verdict, Verdict::Sound, "{resumed}");
        assert!(warm.hits() >= 1, "resumed run must hit the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashes_are_not_retried() {
        use stq_logic::fault::{self, FaultKind, FaultPlan};
        let registry = Registry::builtins();
        let def = registry.get_by_name("nonnull").unwrap();
        fault::install(FaultPlan::new().inject(0, FaultKind::Panic));
        let report = check_qualifier_retrying(
            &registry,
            def,
            Budget::default(),
            RetryPolicy::attempts(3),
        );
        fault::clear();
        assert_eq!(report.verdict, Verdict::Crashed);
        assert_eq!(report.obligations[0].attempts, 1, "crash is terminal");
    }
}
