//! The soundness-checker driver: generate every obligation for a
//! qualifier, discharge each with the prover, and report.

use crate::obligations::obligations_for;
use std::fmt;
use std::time::{Duration, Instant};
use stq_logic::solver::{Outcome, Stats};
use stq_qualspec::{QualifierDef, Registry};
use stq_util::Symbol;

/// The result of one obligation's proof attempt.
#[derive(Clone, Debug)]
pub struct ObligationResult {
    /// What the obligation asserts.
    pub description: String,
    /// Whether the prover discharged it.
    pub proved: bool,
    /// The prover's candidate countermodel if it did not.
    pub countermodel: Vec<String>,
    /// Prover work counters.
    pub stats: Stats,
    /// Wall-clock time for this obligation.
    pub duration: Duration,
}

/// The soundness verdict for one qualifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every obligation was proved.
    Sound,
    /// At least one obligation could not be proved: the type rules may
    /// not guarantee the declared invariant.
    Unsound,
    /// No invariant declared — nothing to check (flow qualifiers are
    /// sound "for free" by subtyping, paper §2.1.4).
    NoInvariant,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Sound => "sound",
            Verdict::Unsound => "NOT proven sound",
            Verdict::NoInvariant => "no invariant (vacuously sound)",
        })
    }
}

/// The full soundness report for one qualifier.
#[derive(Clone, Debug)]
pub struct QualReport {
    /// The qualifier checked.
    pub qualifier: Symbol,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Per-obligation results.
    pub obligations: Vec<ObligationResult>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl QualReport {
    /// The failed obligations, if any.
    pub fn failures(&self) -> impl Iterator<Item = &ObligationResult> {
        self.obligations.iter().filter(|o| !o.proved)
    }
}

impl fmt::Display for QualReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "qualifier `{}`: {} ({} obligation(s), {:.3}s)",
            self.qualifier,
            self.verdict,
            self.obligations.len(),
            self.duration.as_secs_f64()
        )?;
        for o in &self.obligations {
            writeln!(
                f,
                "  [{}] {}",
                if o.proved { "proved" } else { "FAILED" },
                o.description
            )?;
            if !o.proved {
                for line in &o.countermodel {
                    writeln!(f, "      countermodel: {line}")?;
                }
            }
        }
        Ok(())
    }
}

/// Checks the soundness of one qualifier definition against its declared
/// invariant, for all possible programs.
///
/// # Examples
///
/// ```
/// use stq_qualspec::Registry;
/// use stq_soundness::{check_qualifier, Verdict};
///
/// let registry = Registry::builtins();
/// let pos = registry.get_by_name("pos").unwrap();
/// let report = check_qualifier(&registry, pos);
/// assert_eq!(report.verdict, Verdict::Sound);
/// ```
pub fn check_qualifier(registry: &Registry, def: &QualifierDef) -> QualReport {
    let start = Instant::now();
    if def.invariant.is_none() {
        return QualReport {
            qualifier: def.name,
            verdict: Verdict::NoInvariant,
            obligations: Vec::new(),
            duration: start.elapsed(),
        };
    }
    let mut results = Vec::new();
    let mut all_proved = true;
    for ob in obligations_for(registry, def) {
        let t0 = Instant::now();
        let outcome = ob.problem.prove();
        let duration = t0.elapsed();
        let proved = outcome.is_proved();
        all_proved &= proved;
        let (stats, countermodel) = match outcome {
            Outcome::Proved { stats } => (stats, Vec::new()),
            Outcome::Unknown { stats, model } => (stats, model),
        };
        results.push(ObligationResult {
            description: ob.description,
            proved,
            countermodel,
            stats,
            duration,
        });
    }
    QualReport {
        qualifier: def.name,
        verdict: if all_proved {
            Verdict::Sound
        } else {
            Verdict::Unsound
        },
        obligations: results,
        duration: start.elapsed(),
    }
}

/// Checks every qualifier in the registry.
pub fn check_all(registry: &Registry) -> Vec<QualReport> {
    registry
        .iter()
        .map(|def| check_qualifier(registry, def))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_report(name: &str) -> QualReport {
        let registry = Registry::builtins();
        let def = registry.get_by_name(name).expect("builtin exists");
        check_qualifier(&registry, def)
    }

    #[test]
    fn pos_is_sound() {
        let r = builtin_report("pos");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        assert_eq!(r.obligations.len(), 3);
    }

    #[test]
    fn neg_is_sound() {
        let r = builtin_report("neg");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
    }

    #[test]
    fn nonzero_is_sound() {
        let r = builtin_report("nonzero");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // Four case clauses; the restrict clause generates no obligation.
        assert_eq!(r.obligations.len(), 4);
    }

    #[test]
    fn nonnull_is_sound() {
        let r = builtin_report("nonnull");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        assert_eq!(r.obligations.len(), 1);
    }

    #[test]
    fn flow_qualifiers_have_no_obligations() {
        let r = builtin_report("untainted");
        assert_eq!(r.verdict, Verdict::NoInvariant);
        let r = builtin_report("tainted");
        assert_eq!(r.verdict, Verdict::NoInvariant);
    }

    #[test]
    fn unique_is_sound() {
        let r = builtin_report("unique");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // Two assign forms + four preservation cases.
        assert_eq!(r.obligations.len(), 6);
    }

    #[test]
    fn unaliased_is_sound() {
        let r = builtin_report("unaliased");
        assert_eq!(r.verdict, Verdict::Sound, "{r}");
        // ondecl + four preservation cases.
        assert_eq!(r.obligations.len(), 5);
    }

    #[test]
    fn erroneous_pos_with_subtraction_is_rejected() {
        // The paper's running example (§2.1.3): replacing E1 * E2 with
        // E1 - E2 must make the soundness check fail.
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier neg(int Expr E)
                    case E of
                        decl int Const C: C, where C < 0
                    invariant value(E) < 0",
            )
            .unwrap();
        registry
            .add_source(
                "value qualifier pos(int Expr E)
                    case E of
                        decl int Const C:
                            C, where C > 0
                      | decl int Expr E1, E2:
                            E1 - E2, where pos(E1) && pos(E2)
                      | decl int Expr E1:
                            -E1, where neg(E1)
                    invariant value(E) > 0",
            )
            .unwrap();
        let def = registry.get_by_name("pos").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound);
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].description.contains("E1 - E2"));
        assert!(!failures[0].countermodel.is_empty());
    }

    #[test]
    fn unique_without_disallow_is_rejected() {
        // §2.2.3: omitting the disallow clause makes preservation fail
        // for the "store the value of l in l'" case.
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unique(T* LValue L)
                    assign L NULL | new
                    invariant value(L) == NULL ||
                        (isHeapLoc(value(L)) &&
                         forall T** P: *P == value(L) => P == location(L))",
            )
            .unwrap();
        let def = registry.get_by_name("unique").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        let failing: Vec<_> = report.failures().collect();
        assert!(failing
            .iter()
            .any(|o| o.description.contains("read from memory")));
        // The establishment obligations still hold.
        assert!(report
            .obligations
            .iter()
            .filter(|o| o.description.contains("assign form"))
            .all(|o| o.proved));
    }

    #[test]
    fn unaliased_without_disallow_is_rejected() {
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unaliased(T Var X)
                    ondecl
                    invariant forall T** P: *P != location(X)",
            )
            .unwrap();
        let def = registry.get_by_name("unaliased").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        assert!(report
            .failures()
            .any(|o| o.description.contains("address-of")));
    }

    #[test]
    fn unique_with_const_assign_is_rejected() {
        // Allowing arbitrary constants to be assigned to a unique pointer
        // would not establish the invariant (a constant is not NULL and
        // not a fresh heap location).
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier unique(T* LValue L)
                    assign L NULL | new | const
                    disallow L
                    invariant value(L) == NULL ||
                        (isHeapLoc(value(L)) &&
                         forall T** P: *P == value(L) => P == location(L))",
            )
            .unwrap();
        let def = registry.get_by_name("unique").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound, "{report}");
        assert!(report.failures().any(|o| o.description.contains("const")));
    }

    #[test]
    fn check_all_builtins() {
        let registry = Registry::builtins();
        let reports = check_all(&registry);
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_ne!(r.verdict, Verdict::Unsound, "{r}");
        }
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        // Claiming value(E) > 1 for pos's rules must fail: the constant 1
        // satisfies C > 0 but not the claimed invariant... encoded via a
        // fresh qualifier to keep the registry consistent.
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier big(int Expr E)
                    case E of
                        decl int Const C: C, where C > 0
                    invariant value(E) > 1",
            )
            .unwrap();
        let def = registry.get_by_name("big").unwrap();
        let report = check_qualifier(&registry, def);
        assert_eq!(report.verdict, Verdict::Unsound);
    }

    #[test]
    fn report_display_is_informative() {
        let registry = Registry::builtins();
        let def = registry.get_by_name("pos").unwrap();
        let report = check_qualifier(&registry, def);
        let shown = report.to_string();
        assert!(shown.contains("qualifier `pos`"));
        assert!(shown.contains("sound"));
        assert!(shown.contains("E1 * E2"));
    }
}
