//! Synthetic experiment corpora and the measurement harness (paper §6).
//!
//! The paper evaluates on real open-source C programs (grep 2.5, bftpd
//! 1.0.11, mingetty 0.9.4, identd 1.0) that the C-subset front end cannot
//! parse in full, so this crate generates deterministic stand-ins with
//! the same *measured shape* — the same non-blank line counts, the same
//! dereference / printf-call profiles, the same annotation burden, the
//! same NULL-guard idioms that force casts under flow-insensitive
//! checking, and the same seeded format-string bug in bftpd.
//!
//! * [`grep`] — the dfa.c/dfa.h stand-in for Table 1 (nonnull);
//! * [`taint`] — bftpd / mingetty / identd for Table 2 (untainted);
//! * [`uniq`] — the §6.2 uniqueness experiment on the global dfa;
//! * [`tables`] — runs the real typechecker and *measures* the rows.
//!
//! # Examples
//!
//! ```
//! let row = stq_corpus::tables::table1();
//! assert_eq!(row.lines, 2287);
//! assert_eq!(row.errors, 0);
//! ```

pub mod grep;
pub mod tables;
pub mod taint;
pub mod uniq;

pub use tables::{measure, registry_subset, render_table1, render_table2, table1, table2, Row};
