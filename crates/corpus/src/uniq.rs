//! Synthetic stand-in for the paper's §6.2 uniqueness experiment on
//! grep's global `dfa` variable.
//!
//! The paper annotated the global DFA pointer `unique`, found that its
//! initialization (a pointer handed over from the parser module) needs a
//! cast, and that all **49 subsequent references** preserve uniqueness —
//! they only go through dereferences of the global, never copy it.

use std::fmt::Write as _;

/// The number of validated references to the global in the paper.
pub const UNIQUE_REFERENCES: usize = 49;

/// Generates the uniqueness corpus: a `unique` global initialized via a
/// cast, plus exactly [`UNIQUE_REFERENCES`] dereferencing uses.
pub fn grep_unique_source() -> String {
    grep_unique_source_with(UNIQUE_REFERENCES)
}

/// Generates a variant with `n` dereferencing uses of the global.
pub fn grep_unique_source_with(n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "struct dfa {{\n\
         \x20   int* trans;\n\
         \x20   int sindex;\n\
         \x20   int tralloc;\n\
         \x20   int searchflag;\n\
         }};"
    );
    // The unique global (Figure 13's dfa variable).
    let _ = writeln!(out, "struct dfa* unique dfa_g;");
    // The parser module hands over the initial pointer; the assign rules
    // cannot validate this, so a cast is required (§6.2).
    let _ = writeln!(out, "struct dfa* dfaparse();");
    let _ = writeln!(
        out,
        "void dfainit() {{\n\
         \x20   struct dfa* t;\n\
         \x20   t = dfaparse();\n\
         \x20   dfa_g = (struct dfa* unique) t;\n\
         }}"
    );
    // The 49 validated references: each reads or writes *through* the
    // global (allowed — the disallow rule only forbids copying it).
    let per_fn = 7;
    let mut emitted = 0;
    let mut k = 0;
    while emitted < n {
        let uses = per_fn.min(n - emitted);
        let _ = writeln!(out, "void dfaanalyze_{k}(int state) {{");
        for j in 0..uses {
            match j % 3 {
                0 => {
                    let _ = writeln!(out, "    dfa_g->sindex = state + {j};");
                }
                1 => {
                    let _ = writeln!(out, "    dfa_g->tralloc = state * 2;");
                }
                _ => {
                    let _ = writeln!(out, "    dfa_g->searchflag = 1;");
                }
            }
            emitted += 1;
        }
        let _ = writeln!(out, "}}");
        k += 1;
    }
    out
}

/// A variant exercising the violation the paper describes: other globals
/// could not be proven unique because they are **passed as arguments** to
/// procedures, which "is a violation of uniqueness".
pub fn grep_unique_violation_source() -> String {
    let mut out = grep_unique_source_with(7);
    let _ = writeln!(
        out,
        "void consume(struct dfa* d);\n\
         void broken() {{\n\
         \x20   consume(dfa_g);\n\
         }}"
    );
    out
}

/// Counts textual uses of the global (for reporting the "references"
/// column); initialization is excluded, matching the paper's accounting
/// of "subsequent references".
pub fn count_references(src: &str) -> usize {
    src.matches("dfa_g->").count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_count_matches_the_paper() {
        let src = grep_unique_source();
        assert_eq!(count_references(&src), UNIQUE_REFERENCES);
    }

    #[test]
    fn source_parses_with_unique() {
        stq_cir::parse::parse_program(&grep_unique_source(), &["unique"]).expect("parses");
        stq_cir::parse::parse_program(&grep_unique_violation_source(), &["unique"])
            .expect("parses");
    }

    #[test]
    fn counting_dereferencing_uses() {
        // dfa_g->tralloc = dfa_g->sindex * 2; counts as two uses.
        assert_eq!(count_references("dfa_g->a = dfa_g->b;"), 2);
    }
}
