//! The synthetic stand-in for grep 2.5's `dfa.c`/`dfa.h` (paper §6.1).
//!
//! The real files cannot be parsed by the C-subset front end, so this
//! generator reproduces their *shape* as the nonnull experiment sees it:
//! the same number of non-blank lines (2287), pointer dereferences
//! (1072), `nonnull` annotations (114), and NULL-guard idioms that a
//! flow-insensitive checker can only discharge with casts (59). The
//! checker then *measures* Table 1's row over this program — nothing in
//! the harness hard-codes the outputs.

use std::fmt::Write as _;

/// Paper targets for Table 1.
pub const TABLE1_LINES: usize = 2287;
/// Dereference count in Table 1.
pub const TABLE1_DEREFS: usize = 1072;
/// Annotation count in Table 1.
pub const TABLE1_ANNOTATIONS: usize = 114;
/// Cast count in Table 1.
pub const TABLE1_CASTS: usize = 59;

/// How NULL-guard functions discharge their dereferences.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardStyle {
    /// The paper's workaround: a cast inside the guard (§6.1). This is
    /// what flow-insensitive checking requires.
    Cast,
    /// No cast: dereference the tested pointer directly. Clean only
    /// under the flow-sensitive extension.
    Direct,
}

/// Generates the dfa-like source at the paper's scale.
pub fn grep_dfa_source() -> String {
    grep_dfa_source_scaled(1.0)
}

/// Generates a scaled variant: `scale` multiplies the function counts
/// (used by the benchmark sweeps). `scale = 1.0` matches Table 1 exactly.
pub fn grep_dfa_source_scaled(scale: f64) -> String {
    grep_dfa_source_with(scale, GuardStyle::Cast)
}

/// The cast-free variant for the flow-sensitivity ablation: identical
/// shape, but guards dereference directly (no casts, no guard locals).
pub fn grep_dfa_source_direct() -> String {
    grep_dfa_source_with(1.0, GuardStyle::Direct)
}

/// Fully parameterized generator.
pub fn grep_dfa_source_with(scale: f64, guards: GuardStyle) -> String {
    let n_guards = scale_count(TABLE1_CASTS, scale);
    let n_fields = 8;
    // Each guard contributes one annotation (its local); fields contribute
    // one each; the rest are worker parameters (two per worker, with one
    // single-parameter worker absorbing an odd remainder).
    let param_annots = scale_count(TABLE1_ANNOTATIONS - TABLE1_CASTS - n_fields, scale);
    let n_two_param_workers = param_annots / 2;
    let odd_worker = param_annots % 2 == 1;
    let n_workers = n_two_param_workers + usize::from(odd_worker);
    // Dereference budget beyond the one-per-guard.
    let worker_derefs = scale_count(TABLE1_DEREFS - TABLE1_CASTS, scale);
    let target_lines = scale_count(TABLE1_LINES, scale);

    let mut out = String::new();

    // The DFA state machinery: a struct with nonnull transition tables.
    let _ = writeln!(out, "struct dfa {{");
    for i in 0..n_fields {
        let _ = writeln!(out, "    int* nonnull trans{i};");
    }
    let _ = writeln!(out, "    int sindex;");
    let _ = writeln!(out, "    int tralloc;");
    let _ = writeln!(out, "}};");

    // NULL-guard idiom functions (the paper's source of imprecision,
    // §6.1): the guard is invisible to the flow-insensitive checker, so
    // each needs one cast — unless the flow-sensitive extension is in
    // force, in which case the Direct style checks cleanly.
    for k in 0..n_guards {
        match guards {
            GuardStyle::Cast => {
                let _ = writeln!(
                    out,
                    "int state_index_{k}(int* t, int works) {{\n\
                     \x20   if (t != NULL) {{\n\
                     \x20       int* nonnull u = (int* nonnull) t;\n\
                     \x20       return u[works];\n\
                     \x20   }}\n\
                     \x20   return 0 - 1;\n\
                     }}"
                );
            }
            GuardStyle::Direct => {
                let _ = writeln!(
                    out,
                    "int state_index_{k}(int* t, int works) {{\n\
                     \x20   if (t != NULL) {{\n\
                     \x20       return t[works];\n\
                     \x20   }}\n\
                     \x20   return 0 - 1;\n\
                     }}"
                );
            }
        }
    }

    // Worker functions over annotated transition tables: dereference-heavy
    // scanning loops, each dereference justified by the nonnull parameter.
    let mut remaining = worker_derefs;
    for k in 0..n_workers {
        let single = odd_worker && k == n_workers - 1;
        let workers_left = n_workers - k;
        let d = remaining.div_ceil(workers_left);
        remaining -= d;
        if single {
            let _ = writeln!(out, "int match_row_{k}(int* nonnull a, int lim) {{");
        } else {
            let _ = writeln!(
                out,
                "int match_row_{k}(int* nonnull a, int* nonnull b, int lim) {{"
            );
        }
        let _ = writeln!(out, "    int s = 0;");
        let _ = writeln!(out, "    for (int i = 0; i < lim; i++) {{");
        for j in 0..d {
            let src = if single || j % 2 == 0 { "a" } else { "b" };
            let _ = writeln!(out, "        s = s + {src}[i + {j}];");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    return s;");
        let _ = writeln!(out, "}}");
    }

    pad_to_lines(&mut out, target_lines);
    out
}

fn scale_count(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(1.0) as usize
}

/// Pads the program with dereference-free filler functions until the
/// non-blank line count reaches `target` exactly (the remainder of the
/// real dfa.c is bookkeeping code that contributes lines but nothing to
/// the other counters).
pub fn pad_to_lines(out: &mut String, target: usize) {
    let current = stq_cir::pretty::count_lines(out);
    if current >= target {
        return;
    }
    let mut needed = target - current;
    let mut k = 0;
    // A filler function costs 3 lines of scaffold plus its body.
    while needed >= 4 {
        let body = (needed - 3).min(400);
        let _ = writeln!(out, "int bookkeeping_{k}(int x) {{");
        for _ in 0..body {
            let _ = writeln!(out, "    x = x + 1;");
        }
        let _ = writeln!(out, "    return x;");
        let _ = writeln!(out, "}}");
        needed = target.saturating_sub(stq_cir::pretty::count_lines(out));
        k += 1;
    }
    // Single-line globals absorb any remainder exactly.
    for _ in 0..needed {
        let _ = writeln!(out, "int pad_{k};");
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::pretty::count_lines;

    #[test]
    fn source_has_exactly_the_papers_line_count() {
        let src = grep_dfa_source();
        assert_eq!(count_lines(&src), TABLE1_LINES);
    }

    #[test]
    fn source_parses_with_nonnull() {
        let src = grep_dfa_source();
        let p = stq_cir::parse::parse_program(&src, &["nonnull"]).expect("parses");
        assert!(!p.funcs.is_empty());
        assert!(!p.structs.is_empty());
    }

    #[test]
    fn scaled_sources_scale_lines() {
        let half = grep_dfa_source_scaled(0.5);
        let lines = count_lines(&half);
        let expected = (TABLE1_LINES as f64 * 0.5).round() as usize;
        assert_eq!(lines, expected);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(grep_dfa_source(), grep_dfa_source());
    }
}
