//! The experiment harness: runs the extensible typechecker over the
//! corpus programs and produces the rows of the paper's Tables 1 and 2
//! (plus the §6.2 uniqueness summary). Every number is *measured* by the
//! checker; the corpus generators only fix the program shapes.

use crate::{grep, taint, uniq};
use std::fmt;
use std::time::{Duration, Instant};
use stq_cir::ast::Program;
use stq_cir::parse::parse_program;
use stq_cir::pretty::count_lines;
use stq_qualspec::Registry;
use stq_typecheck::check_program;

/// A registry containing only the named builtin qualifiers (the paper
/// runs one qualifier discipline per experiment).
pub fn registry_subset(names: &[&str]) -> Registry {
    let full = Registry::builtins();
    let mut out = Registry::new();
    for n in names {
        let def = full
            .get_by_name(n)
            .unwrap_or_else(|| panic!("unknown builtin qualifier `{n}`"))
            .clone();
        out.add(def).expect("builtin names are unique");
    }
    out
}

/// One measured experiment row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Non-blank source lines.
    pub lines: usize,
    /// Pointer dereferences (Table 1) — 0 where not applicable.
    pub dereferences: usize,
    /// `printf`-family calls (Table 2).
    pub printf_calls: usize,
    /// User-written qualifier annotations (library prototypes such as
    /// `printf`'s header signature are excluded, as in the paper).
    pub annotations: usize,
    /// Casts to qualified types.
    pub casts: usize,
    /// Remaining qualifier errors.
    pub errors: usize,
    /// Wall-clock checking time (the paper reports "under one second").
    pub check_time: Duration,
    /// The full checker telemetry behind the row's headline numbers.
    pub stats: stq_typecheck::CheckStats,
}

/// Runs the checker over a program source under a qualifier subset and
/// measures a row.
pub fn measure(name: &str, source: &str, quals: &[&str]) -> Row {
    let registry = registry_subset(quals);
    let program = parse_program(source, &registry.names())
        .unwrap_or_else(|e| panic!("corpus program {name} failed to parse: {e}"));
    let start = Instant::now();
    let result = check_program(&registry, &program);
    let check_time = start.elapsed();
    assert!(
        !result.diags.has_errors(),
        "corpus program {name} has base type errors:\n{}",
        result.diags
    );
    let library_annots = library_annotations(&program, &registry);
    Row {
        program: name.to_owned(),
        lines: count_lines(source),
        dereferences: result.stats.dereferences,
        printf_calls: result.stats.printf_calls,
        annotations: result.stats.annotations - library_annots,
        casts: result.stats.casts,
        errors: result.stats.qualifier_errors,
        check_time,
        stats: result.stats,
    }
}

/// Annotations contributed by library prototypes (`printf`-family
/// signatures come from replacement headers in the paper's setup and are
/// not counted as user annotations).
fn library_annotations(program: &Program, registry: &Registry) -> usize {
    const LIBRARY: [&str; 7] = [
        "printf", "fprintf", "sprintf", "snprintf", "syslog", "vsyslog", "vprintf",
    ];
    program
        .protos
        .iter()
        .filter(|p| LIBRARY.contains(&p.name.as_str()))
        .map(|p| {
            p.sig
                .params
                .iter()
                .filter(|(_, ty)| mentions_qual(ty, registry))
                .count()
                + usize::from(mentions_qual(&p.sig.ret, registry))
        })
        .sum()
}

fn mentions_qual(ty: &stq_cir::ast::QualType, registry: &Registry) -> bool {
    ty.quals.iter().any(|q| registry.get(*q).is_some())
        || ty.pointee().is_some_and(|p| mentions_qual(p, registry))
}

/// Table 1: the nonnull experiment on the grep dfa corpus.
pub fn table1() -> Row {
    measure(
        "grep (dfa.c, dfa.h)",
        &grep::grep_dfa_source(),
        &["nonnull"],
    )
}

/// Table 2: the untainted experiment on bftpd, mingetty, and identd.
pub fn table2() -> Vec<Row> {
    vec![
        measure("bftpd", &taint::bftpd_source(), &["untainted", "tainted"]),
        measure(
            "mingetty",
            &taint::mingetty_source(),
            &["untainted", "tainted"],
        ),
        measure("identd", &taint::identd_source(), &["untainted", "tainted"]),
    ]
}

/// The §6.2 uniqueness experiment: `(row, validated references)`.
pub fn unique_experiment() -> (Row, usize) {
    let src = uniq::grep_unique_source();
    let row = measure("grep (dfa global)", &src, &["unique"]);
    (row, uniq::count_references(&src))
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(row: &Row) -> String {
    format!(
        "Table 1. Results from the nonnull experiment.\n\
         program:       {}\n\
         lines:         {}\n\
         dereferences:  {}\n\
         annotations:   {}\n\
         casts:         {}\n\
         errors:        {}\n\
         check time:    {:.3}s\n",
        row.program,
        row.lines,
        row.dereferences,
        row.annotations,
        row.casts,
        row.errors,
        row.check_time.as_secs_f64()
    )
}

/// Renders Table 2 in the paper's layout.
pub fn render_table2(rows: &[Row]) -> String {
    let mut cols = vec![
        "program:".to_owned(),
        "lines:".to_owned(),
        "printf calls:".to_owned(),
        "annotations:".to_owned(),
        "casts:".to_owned(),
        "errors:".to_owned(),
    ];
    for r in rows {
        cols[0] += &format!("  {:>9}", r.program);
        cols[1] += &format!("  {:>9}", r.lines);
        cols[2] += &format!("  {:>9}", r.printf_calls);
        cols[3] += &format!("  {:>9}", r.annotations);
        cols[4] += &format!("  {:>9}", r.casts);
        cols[5] += &format!("  {:>9}", r.errors);
    }
    let mut out = String::from("Table 2. Results from the untainted experiment.\n");
    for c in cols {
        out.push_str(&c);
        out.push('\n');
    }
    out
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} lines, {} derefs, {} printf calls, {} annotations, {} casts, {} errors",
            self.program,
            self.lines,
            self.dereferences,
            self.printf_calls,
            self.annotations,
            self.casts,
            self.errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper() {
        let row = table1();
        assert_eq!(row.lines, grep::TABLE1_LINES);
        assert_eq!(row.dereferences, grep::TABLE1_DEREFS, "{row}");
        assert_eq!(row.annotations, grep::TABLE1_ANNOTATIONS, "{row}");
        assert_eq!(row.casts, grep::TABLE1_CASTS, "{row}");
        assert_eq!(row.errors, 0, "{row}");
    }

    #[test]
    fn table1_checking_is_under_a_second() {
        let row = table1();
        assert!(
            row.check_time.as_secs_f64() < 1.0,
            "checking took {:?}",
            row.check_time
        );
    }

    #[test]
    fn table2_reproduces_the_paper() {
        let rows = table2();
        let targets = [
            taint::BFTPD_TARGETS,
            taint::MINGETTY_TARGETS,
            taint::IDENTD_TARGETS,
        ];
        for (row, (lines, printfs, annots, casts, errors)) in rows.iter().zip(targets) {
            assert_eq!(row.lines, lines, "{row}");
            assert_eq!(row.printf_calls, printfs, "{row}");
            assert_eq!(row.annotations, annots, "{row}");
            assert_eq!(row.casts, casts, "{row}");
            assert_eq!(row.errors, errors, "{row}");
        }
    }

    #[test]
    fn unique_experiment_validates_all_references() {
        let (row, references) = unique_experiment();
        assert_eq!(references, uniq::UNIQUE_REFERENCES);
        assert_eq!(row.errors, 0, "{row}");
        assert_eq!(row.casts, 1, "{row}");
    }

    #[test]
    fn unique_violation_is_detected() {
        let row_src = uniq::grep_unique_violation_source();
        let registry = registry_subset(&["unique"]);
        let program = parse_program(&row_src, &registry.names()).unwrap();
        let result = check_program(&registry, &program);
        assert_eq!(result.stats.qualifier_errors, 1, "{}", result.diags);
    }

    #[test]
    fn rows_carry_checker_telemetry() {
        let row = table1();
        assert!(row.stats.exprs_visited > 0, "{row}");
        assert!(row.stats.memo_misses > 0, "{row}");
        assert_eq!(row.stats.casts, row.casts);
    }

    #[test]
    fn rendered_tables_contain_the_numbers() {
        let t1 = render_table1(&table1());
        assert!(t1.contains("2287"));
        assert!(t1.contains("1072"));
        let t2 = render_table2(&table2());
        assert!(t2.contains("bftpd"));
        assert!(t2.contains("134"));
    }
}
