//! Synthetic stand-ins for the paper's §6.3 taintedness programs:
//! bftpd 1.0.11 (an FTP server), mingetty 0.9.4, and identd 1.0.
//!
//! Each program reproduces the shape the untainted experiment measures:
//! the paper's non-blank line counts, `printf`-family call counts, the
//! user annotations required, and — for bftpd — the previously identified
//! **exploitable format-string bug**: `sendstrf(s, entry->d_name)` passes
//! a file name where an untainted format string is expected.

use crate::grep::pad_to_lines;
use std::fmt::Write as _;

/// Table 2 targets: (lines, printf calls, user annotations, casts, errors).
pub const BFTPD_TARGETS: (usize, usize, usize, usize, usize) = (750, 134, 2, 0, 1);
/// mingetty targets.
pub const MINGETTY_TARGETS: (usize, usize, usize, usize, usize) = (293, 23, 1, 0, 0);
/// identd targets.
pub const IDENTD_TARGETS: (usize, usize, usize, usize, usize) = (228, 21, 0, 0, 0);

fn printf_proto(out: &mut String) {
    let _ = writeln!(out, "int printf(char* untainted fmt, ...);");
}

/// Emits `n` status-report functions containing `per_fn` printf calls
/// each with constant format strings, returning how many calls were
/// emitted.
fn emit_printf_block(out: &mut String, label: &str, n: usize, per_fn: usize) -> usize {
    let mut emitted = 0;
    for k in 0..n {
        let _ = writeln!(out, "void {label}_{k}(int code, char* msg) {{");
        for j in 0..per_fn {
            match j % 3 {
                0 => {
                    let _ = writeln!(out, "    printf(\"{label} {k}.{j}: %d\\n\", code);");
                }
                1 => {
                    let _ = writeln!(out, "    printf(\"{label} {k}.{j}: %s\\n\", msg);");
                }
                _ => {
                    let _ = writeln!(out, "    printf(\"{label} {k}.{j} ok\\n\");");
                }
            }
            emitted += 1;
        }
        let _ = writeln!(out, "}}");
    }
    emitted
}

/// The bftpd-like FTP server, including the seeded vulnerability.
///
/// The two user annotations are the `format` parameters of `sendstrf`
/// and `logmsg` (the paper: "two procedure parameters that are necessary
/// to annotate as untainted"). The bug site is in `list_directory`.
pub fn bftpd_source() -> String {
    let (lines, printf_calls, _, _, _) = BFTPD_TARGETS;
    let mut out = String::new();
    printf_proto(&mut out);
    // The dirent structure whose d_name field carries untrusted data.
    let _ = writeln!(
        out,
        "struct dirent {{\n\
         \x20   char* d_name;\n\
         \x20   int d_ino;\n\
         }};"
    );
    // User annotation 1: sendstrf's format parameter.
    let _ = writeln!(
        out,
        "int sendstrf(int s, char* untainted format, int arg) {{\n\
         \x20   printf(format, arg);\n\
         \x20   return s;\n\
         }}"
    );
    // User annotation 2: logmsg's format parameter.
    let _ = writeln!(
        out,
        "void logmsg(char* untainted format) {{\n\
         \x20   printf(format);\n\
         }}"
    );
    // The vulnerability (Bailleux 2000, rediscovered by Shankar et al.
    // and by the paper): a directory entry name used as a format string.
    let _ = writeln!(
        out,
        "int list_directory(int s, struct dirent* entry) {{\n\
         \x20   int r;\n\
         \x20   r = sendstrf(s, entry->d_name, 0);\n\
         \x20   return r;\n\
         }}"
    );
    // Command handlers with constant format strings; two printf calls are
    // already inside sendstrf/logmsg.
    let body_calls = printf_calls - 2;
    let per_fn = 4;
    let full = body_calls / per_fn;
    let mut emitted = emit_printf_block(&mut out, "handle", full, per_fn);
    if emitted < body_calls {
        emitted += emit_printf_block(&mut out, "extra", 1, body_calls - emitted);
    }
    debug_assert_eq!(emitted, body_calls);
    pad_to_lines(&mut out, lines);
    out
}

/// The mingetty-like remote terminal utility (no vulnerabilities; one
/// user annotation on its banner-printing helper).
pub fn mingetty_source() -> String {
    let (lines, printf_calls, _, _, _) = MINGETTY_TARGETS;
    let mut out = String::new();
    printf_proto(&mut out);
    // User annotation: the issue-banner formatter.
    let _ = writeln!(
        out,
        "void print_banner(char* untainted format) {{\n\
         \x20   printf(format);\n\
         }}"
    );
    let _ = writeln!(
        out,
        "void show_issue(int tty) {{\n\
         \x20   print_banner(\"login: \");\n\
         \x20   print_banner(\"tty ready\\n\");\n\
         }}"
    );
    let body_calls = printf_calls - 1;
    let per_fn = 4;
    let full = body_calls / per_fn;
    let mut emitted = emit_printf_block(&mut out, "getty", full, per_fn);
    if emitted < body_calls {
        emitted += emit_printf_block(&mut out, "tty", 1, body_calls - emitted);
    }
    debug_assert_eq!(emitted, body_calls);
    pad_to_lines(&mut out, lines);
    out
}

/// The identd-like network identification service (no vulnerabilities,
/// no user annotations — every format string is a constant).
pub fn identd_source() -> String {
    let (lines, printf_calls, _, _, _) = IDENTD_TARGETS;
    let mut out = String::new();
    printf_proto(&mut out);
    let per_fn = 3;
    let full = printf_calls / per_fn;
    let mut emitted = emit_printf_block(&mut out, "ident", full, per_fn);
    if emitted < printf_calls {
        emitted += emit_printf_block(&mut out, "reply", 1, printf_calls - emitted);
    }
    debug_assert_eq!(emitted, printf_calls);
    pad_to_lines(&mut out, lines);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::pretty::count_lines;

    #[test]
    fn line_counts_match_the_paper() {
        assert_eq!(count_lines(&bftpd_source()), BFTPD_TARGETS.0);
        assert_eq!(count_lines(&mingetty_source()), MINGETTY_TARGETS.0);
        assert_eq!(count_lines(&identd_source()), IDENTD_TARGETS.0);
    }

    #[test]
    fn sources_parse_with_untainted() {
        for src in [bftpd_source(), mingetty_source(), identd_source()] {
            stq_cir::parse::parse_program(&src, &["untainted", "tainted"]).expect("corpus parses");
        }
    }

    #[test]
    fn bftpd_contains_the_bug_site() {
        assert!(bftpd_source().contains("r = sendstrf(s, entry->d_name, 0);"));
    }
}
