//! The three differential oracles.
//!
//! 1. **Soundness** (paper §5): a cleanly typechecked, cast-free program
//!    never violates a proven qualifier's declared invariant at run time.
//!    Checked by executing the observed program (see
//!    `stq_typecheck::observe_program`) and treating any failed
//!    observation — or a runtime crash class that a restrict rule rules
//!    out statically, like a null dereference or a format-string read —
//!    as a divergence. Division/modulo by zero is *not* flagged: the
//!    paper's `nonzero` restrict covers only `E1 / E2` with derivable
//!    denominators, and its own Figure 2 `gcd` uses unguarded `%`.
//! 2. **Instrumentation** (paper §2.1.3): a cast's run-time check fires
//!    exactly when the cast-to invariant fails dynamically. Checked by
//!    running the instrumented program twice — once with a recording
//!    checker that evaluates every invariant but never fails, once for
//!    real — and requiring the real run to fail precisely at the first
//!    recorded violation (and nowhere, when none was recorded).
//! 3. **Round-trip**: pretty-print → reparse is idempotent and preserves
//!    the static verdict (error/warning counts and qualifier errors).

use std::cell::RefCell;
use std::fmt;

use stq_cir::ast::Program;
use stq_cir::interp::{run_entry, InterpConfig, QualChecker, RuntimeError, Value};
use stq_cir::pretty::program_to_string;
use stq_core::Session;
use stq_typecheck::InvariantChecker;
use stq_util::Symbol;

use crate::gen::{entry_args, entry_name};

/// Which oracle a divergence came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Clean + cast-free, yet an invariant was observed violated.
    Soundness,
    /// A cast check fired when it shouldn't, or didn't when it should.
    Instrumentation,
    /// Pretty-print → reparse changed the program or its verdict.
    RoundTrip,
    /// The harness itself misbehaved (generated source unparseable,
    /// unknown function reached, …).
    Generator,
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Oracle::Soundness => "soundness",
            Oracle::Instrumentation => "instrumentation",
            Oracle::RoundTrip => "round-trip",
            Oracle::Generator => "generator",
        })
    }
}

/// A static-vs-dynamic disagreement, with the program that witnesses it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The oracle that failed.
    pub oracle: Oracle,
    /// What disagreed.
    pub detail: String,
    /// Witness program source (minimized when found via fuzzing).
    pub source: String,
}

/// One fuzz case's outcome.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All applicable oracles agreed.
    Pass,
    /// An oracle disagreed.
    Diverged(Divergence),
    /// The pipeline panicked — always a bug, whatever the program was.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
        /// The witness program source (minimized when possible).
        source: String,
    },
}

/// Result of running the oracle battery over one program.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Whether the static checker accepted the program with no problems.
    pub clean: bool,
    /// Number of casts the checker saw.
    pub casts: usize,
    /// The battery verdict.
    pub outcome: Outcome,
}

/// Interpreter limits for oracle runs: enough fuel for any generated
/// program's bounded loops, small enough to keep throughput high.
pub fn oracle_config() -> InterpConfig {
    InterpConfig {
        max_steps: 200_000,
        ..InterpConfig::default()
    }
}

/// Parses `source` and runs the oracle battery. A parse failure is a
/// [`Oracle::Generator`] divergence: every input reaching this point is
/// supposed to be well-formed (generated, pretty-printed, or corpus).
pub fn run_case(session: &Session, source: &str) -> CaseResult {
    match session.parse(source) {
        Ok(program) => run_oracles(session, &program),
        Err(e) => CaseResult {
            clean: false,
            casts: 0,
            outcome: Outcome::Diverged(Divergence {
                oracle: Oracle::Generator,
                detail: format!("source does not parse: {e}"),
                source: source.to_owned(),
            }),
        },
    }
}

/// Runs the oracle battery on an already-parsed program.
pub fn run_oracles(session: &Session, program: &Program) -> CaseResult {
    let source = program_to_string(program);
    let result = session.check(program);
    let clean = result.is_clean();
    let casts = result.stats.casts;
    let diverged = |oracle, detail: String| CaseResult {
        clean,
        casts,
        outcome: Outcome::Diverged(Divergence {
            oracle,
            detail,
            source: source.clone(),
        }),
    };

    // --- oracle 3: round-trip ---
    let reparsed = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return diverged(Oracle::RoundTrip, format!("pretty output unparseable: {e}")),
    };
    let reprinted = program_to_string(&reparsed);
    if reprinted != source {
        return diverged(
            Oracle::RoundTrip,
            "pretty-printing is not idempotent".to_owned(),
        );
    }
    let v1 = verdict_of(session, program);
    let v2 = verdict_of(session, &reparsed);
    if v1 != v2 {
        return diverged(
            Oracle::RoundTrip,
            format!("verdict changed across reparse: {v1:?} vs {v2:?}"),
        );
    }

    // Dynamic oracles need a runnable entry with fabricable arguments.
    let Some(entry) = entry_name(program) else {
        return CaseResult {
            clean,
            casts,
            outcome: Outcome::Pass,
        };
    };
    let Some(args) = entry_args(program) else {
        return CaseResult {
            clean,
            casts,
            outcome: Outcome::Pass,
        };
    };

    // --- oracle 1: soundness (clean, cast-free programs only: a cast is
    // a statically trusted lie, discharged by oracle 2 instead) ---
    if clean && casts == 0 {
        match session.run_observed(program, &entry, &args, oracle_config()) {
            Ok(_) | Err(RuntimeError::OutOfFuel | RuntimeError::StackOverflow) => {}
            Err(RuntimeError::DivByZero(_) | RuntimeError::ArithOverflow(_)) => {
                // Outside the static guarantee: `%` has no restrict rule
                // (mirroring the paper's Figure 2 gcd), and the
                // invariants are proved over mathematical integers, so an
                // execution stops — explicitly, never by wrapping — the
                // moment a result leaves the representable range.
            }
            Err(RuntimeError::CheckFailed { qual, value, .. }) => {
                return diverged(
                    Oracle::Soundness,
                    format!("invariant of proven `{qual}` violated on value {value}"),
                );
            }
            Err(e @ (RuntimeError::NullDeref(_) | RuntimeError::FormatString { .. })) => {
                return diverged(
                    Oracle::Soundness,
                    format!("restrict-guarded crash in a clean program: {e}"),
                );
            }
            Err(e) => {
                return diverged(Oracle::Generator, format!("unrunnable clean program: {e}"));
            }
        }
    }

    // --- oracle 2: instrumentation (programs with casts) ---
    if casts > 0 {
        if let Some(d) = instrumentation_oracle(session, program, &entry, &args) {
            return diverged(Oracle::Instrumentation, d);
        }
    }

    CaseResult {
        clean,
        casts,
        outcome: Outcome::Pass,
    }
}

/// The static verdict tuple compared across reparse.
fn verdict_of(session: &Session, program: &Program) -> (usize, usize, usize) {
    let r = session.check(program);
    (
        r.diags.count(stq_util::Severity::Error),
        r.diags.count(stq_util::Severity::Warning),
        r.stats.qualifier_errors,
    )
}

/// Evaluates invariants like the real checker but never fails, recording
/// each check's (qualifier, value, verdict). Because the interpreter is
/// deterministic, the recording run and the real run execute identical
/// prefixes up to the first recorded violation.
struct Recording<'a> {
    inner: &'a InvariantChecker,
    log: RefCell<Vec<(Symbol, String, bool)>>,
}

impl QualChecker for Recording<'_> {
    fn holds(&self, qual: Symbol, value: Value) -> bool {
        let h = self.inner.holds(qual, value);
        self.log.borrow_mut().push((qual, value.to_string(), h));
        true
    }
}

fn instrumentation_oracle(
    session: &Session,
    program: &Program,
    entry: &str,
    args: &[Value],
) -> Option<String> {
    let instrumented = session.instrument(program);
    let checker = InvariantChecker::new(session.registry());
    let recording = Recording {
        inner: &checker,
        log: RefCell::new(Vec::new()),
    };
    let predicted = run_entry(&instrumented, entry, args, &recording, oracle_config());
    let log = recording.log.into_inner();
    let first_violation = log.iter().position(|(_, _, holds)| !holds);
    let real = run_entry(&instrumented, entry, args, &checker, oracle_config());

    match (first_violation, real) {
        (Some(k), Err(RuntimeError::CheckFailed { qual, value, .. })) => {
            let (expect_qual, expect_value, _) = &log[k];
            if *expect_qual == qual && *expect_value == value {
                None
            } else {
                Some(format!(
                    "check failed on `{qual}`={value}, but the first recorded violation \
                     was `{expect_qual}`={expect_value}"
                ))
            }
        }
        (Some(k), other) => {
            let (q, v, _) = &log[k];
            Some(format!(
                "recorded violation of `{q}` on {v} (check #{k}) but the real run \
                 ended with {outcome}",
                outcome = describe(&other)
            ))
        }
        (None, Err(RuntimeError::CheckFailed { qual, value, .. })) => Some(format!(
            "check for `{qual}` fired on {value}, but no violation was recorded"
        )),
        (None, real) => {
            // No violation recorded: the real run must replay the
            // recording run exactly, passing every recorded check.
            match (&predicted, &real) {
                (Ok(a), Ok(b)) => {
                    if a.ret != b.ret {
                        Some(format!(
                            "instrumented run returned {:?}, recording run {:?}",
                            b.ret, a.ret
                        ))
                    } else if b.checks_passed != log.len() {
                        Some(format!(
                            "real run passed {} checks, recording saw {}",
                            b.checks_passed,
                            log.len()
                        ))
                    } else {
                        None
                    }
                }
                (Err(a), Err(b)) if a == b => None,
                (a, b) => Some(format!(
                    "recording run {} but real run {}",
                    describe_res(a),
                    describe_res(b)
                )),
            }
        }
    }
}

fn describe(r: &Result<stq_cir::interp::ExecOutcome, RuntimeError>) -> String {
    describe_res(r)
}

fn describe_res(r: &Result<stq_cir::interp::ExecOutcome, RuntimeError>) -> String {
    match r {
        Ok(out) => format!("returned {:?}", out.ret),
        Err(e) => format!("failed with {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(src: &str) -> CaseResult {
        let session = Session::with_builtins();
        run_case(&session, src)
    }

    #[test]
    fn clean_generated_style_program_passes_all_oracles() {
        let r = case(
            "int pos f1(int pos a1) {
                 int pos v1 = a1 * 3;
                 int nonzero v2 = (-4);
                 int v3 = v1 / v2;
                 return v1;
             }",
        );
        assert!(r.clean);
        assert!(matches!(r.outcome, Outcome::Pass), "{:?}", r.outcome);
    }

    #[test]
    fn passing_and_failing_casts_satisfy_the_instrumentation_oracle() {
        for (src, _fails) in [
            ("int pos f(int a1) { return (int pos) a1; }", true),
            ("int pos f(int pos a1) { return (int pos) (a1 * 2); }", false),
        ] {
            let r = case(src);
            assert!(
                matches!(r.outcome, Outcome::Pass),
                "{src}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn statically_rejected_programs_still_round_trip() {
        let r = case("int pos f(int a1) { int pos x = a1; return x; }");
        assert!(!r.clean);
        assert!(matches!(r.outcome, Outcome::Pass), "{:?}", r.outcome);
    }

    #[test]
    fn mod_by_zero_is_documented_as_outside_the_guarantee() {
        // Statically clean (no restrict on `%`), dynamically DivByZero —
        // the boundary the paper's own gcd example sits on.
        let r = case("int f(int a1) { int v1 = a1 % a1; return v1; }");
        assert!(r.clean);
        assert!(matches!(r.outcome, Outcome::Pass), "{:?}", r.outcome);
    }
}
