//! Delta-debugging shrinker for divergence witnesses.
//!
//! Greedy structural minimization to a fixpoint: drop whole non-entry
//! functions, drop struct/global/proto definitions, then remove or
//! unwrap individual statements, keeping each edit only if the candidate
//! still reproduces the target (same oracle kind, or still panics). The
//! predicate count is bounded so a pathological witness cannot stall a
//! fuzz run; the witness found so far is returned when the budget runs
//! out.

use std::panic::{catch_unwind, AssertUnwindSafe};

use stq_cir::ast::{Program, Stmt, StmtKind};
use stq_core::Session;

use crate::oracle::{run_oracles, Oracle, Outcome};

/// What a shrunk candidate must keep reproducing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// The oracle battery reports a divergence from this oracle.
    Diverges(Oracle),
    /// The pipeline panics on the program.
    Panics,
}

/// Whether `program` still exhibits `target`. Panics inside the oracle
/// battery are contained here, so a shrinker probing a panicking witness
/// never takes the fuzz worker down with it.
pub fn reproduces(session: &Session, program: &Program, target: Target) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| run_oracles(session, program)));
    match (target, result) {
        (Target::Panics, Err(_)) => true,
        (Target::Diverges(oracle), Ok(r)) => {
            matches!(r.outcome, Outcome::Diverged(ref d) if d.oracle == oracle)
        }
        _ => false,
    }
}

/// Minimizes `program` while preserving `target`, spending at most
/// `budget` predicate evaluations.
pub fn shrink(session: &Session, program: &Program, target: Target, budget: usize) -> Program {
    shrink_with(program, &mut |p| reproduces(session, p, target), budget)
}

/// Minimizes `program` while `keep` stays true — the generic core, also
/// used by tests with synthetic predicates.
pub fn shrink_with(
    program: &Program,
    keep: &mut dyn FnMut(&Program) -> bool,
    mut budget: usize,
) -> Program {
    let mut best = program.clone();
    loop {
        let mut progressed = false;

        // Pass 1: drop whole definitions. The last function is the entry
        // point, so it is never a candidate.
        let funcs = best.funcs.len();
        for i in 0..funcs.saturating_sub(1) {
            if budget == 0 {
                return best;
            }
            let mut cand = best.clone();
            cand.funcs.remove(i);
            budget -= 1;
            if keep(&cand) {
                best = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            for (list_len, remove) in [
                (best.structs.len(), 0usize),
                (best.globals.len(), 1),
                (best.protos.len(), 2),
            ] {
                for i in 0..list_len {
                    if budget == 0 {
                        return best;
                    }
                    let mut cand = best.clone();
                    match remove {
                        0 => {
                            cand.structs.remove(i);
                        }
                        1 => {
                            cand.globals.remove(i);
                        }
                        _ => {
                            cand.protos.remove(i);
                        }
                    }
                    budget -= 1;
                    if keep(&cand) {
                        best = cand;
                        progressed = true;
                        break;
                    }
                }
                if progressed {
                    break;
                }
            }
        }

        // Pass 2: per-statement edits, pre-order. `Remove` empties the
        // statement (then `cleanup` splices out empty blocks); `Unwrap`
        // hoists an `if`/`while` body over its control structure.
        if !progressed {
            'stmts: for k in 0..stmt_count(&best) {
                for action in [Action::Remove, Action::Unwrap] {
                    if budget == 0 {
                        return best;
                    }
                    let mut cand = best.clone();
                    if !apply_edit(&mut cand, k, action) {
                        continue;
                    }
                    cleanup(&mut cand);
                    budget -= 1;
                    if keep(&cand) {
                        best = cand;
                        progressed = true;
                        break 'stmts;
                    }
                }
            }
        }

        if !progressed {
            return best;
        }
    }
}

#[derive(Clone, Copy)]
enum Action {
    Remove,
    Unwrap,
}

fn stmt_count(p: &Program) -> usize {
    fn count(s: &Stmt) -> usize {
        1 + match &s.kind {
            StmtKind::Block(stmts) => stmts.iter().map(count).sum(),
            StmtKind::If(_, then, els) => {
                count(then) + els.as_deref().map_or(0, count)
            }
            StmtKind::While(_, body) => count(body),
            _ => 0,
        }
    }
    p.funcs
        .iter()
        .flat_map(|f| f.body.iter())
        .map(count)
        .sum()
}

/// Applies `action` to the `target`-th statement in pre-order. Returns
/// false when the action does not apply to that statement's shape.
fn apply_edit(p: &mut Program, target: usize, action: Action) -> bool {
    let mut n = 0usize;
    for func in &mut p.funcs {
        for s in &mut func.body {
            if walk(s, &mut n, target, action) {
                return true;
            }
        }
    }
    false
}

fn walk(s: &mut Stmt, n: &mut usize, target: usize, action: Action) -> bool {
    if *n == target {
        *n += 1;
        return match action {
            Action::Remove => {
                s.kind = StmtKind::Block(Vec::new());
                true
            }
            Action::Unwrap => match &mut s.kind {
                StmtKind::If(_, then, _) => {
                    let hoisted = (**then).clone();
                    *s = hoisted;
                    true
                }
                StmtKind::While(_, body) => {
                    let hoisted = (**body).clone();
                    *s = hoisted;
                    true
                }
                _ => false,
            },
        };
    }
    *n += 1;
    match &mut s.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                if walk(s, n, target, action) {
                    return true;
                }
            }
            false
        }
        StmtKind::If(_, then, els) => {
            if walk(then, n, target, action) {
                return true;
            }
            els.as_deref_mut()
                .is_some_and(|e| walk(e, n, target, action))
        }
        StmtKind::While(_, body) => walk(body, n, target, action),
        _ => false,
    }
}

/// Splices out empty blocks left behind by `Action::Remove`.
fn cleanup(p: &mut Program) {
    fn is_empty_block(s: &Stmt) -> bool {
        matches!(&s.kind, StmtKind::Block(v) if v.is_empty())
    }
    fn clean_stmt(s: &mut Stmt) {
        match &mut s.kind {
            StmtKind::Block(stmts) => clean_vec(stmts),
            StmtKind::If(_, then, els) => {
                clean_stmt(then);
                if let Some(e) = els.as_deref_mut() {
                    clean_stmt(e);
                }
            }
            StmtKind::While(_, body) => clean_stmt(body),
            _ => {}
        }
    }
    fn clean_vec(stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            clean_stmt(s);
        }
        stmts.retain(|s| !is_empty_block(s));
    }
    for func in &mut p.funcs {
        clean_vec(&mut func.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::ast::ExprKind;
    use stq_cir::parse::parse_program;
    use stq_cir::pretty::program_to_string;

    const QUALS: [&str; 4] = ["pos", "neg", "nonzero", "nonnull"];

    fn has_division(p: &Program) -> bool {
        let mut found = false;
        let mut p = p.clone();
        crate::mutate::for_each_expr_mut(&mut p, &mut |e| {
            if matches!(&e.kind, ExprKind::Binop(stq_cir::ast::BinOp::Div, ..)) {
                found = true;
            }
        });
        found
    }

    #[test]
    fn shrink_strips_everything_irrelevant_to_the_predicate() {
        let src = "int helper(int a) { int t = a * 2; return t; }
            int f(int a) {
                int x = a + 1;
                int y = 2;
                if (x > 0) { int z = x / 3; x = z; }
                while (y > 0) { y = y - 1; }
                return x;
            }";
        let program = parse_program(src, &QUALS).unwrap();
        assert!(has_division(&program));
        let small = shrink_with(&program, &mut has_division, 500);
        assert!(has_division(&small), "predicate must be preserved");
        assert_eq!(small.funcs.len(), 1, "helper should be dropped");
        let before = stmt_count(&program);
        let after = stmt_count(&small);
        assert!(
            after < before / 2,
            "expected substantial shrink, got {after} of {before}:\n{}",
            program_to_string(&small)
        );
    }

    #[test]
    fn shrink_respects_the_budget() {
        let src = "int f(int a) { int x = a; int y = x; return y; }";
        let program = parse_program(src, &QUALS).unwrap();
        // Zero budget: nothing may change.
        let same = shrink_with(&program, &mut |_| true, 0);
        assert_eq!(
            program_to_string(&same),
            program_to_string(&program)
        );
    }
}
