//! Differential fuzzing harness for the semantic-qualifier pipeline.
//!
//! The harness closes the loop the rest of the suite leaves open: the
//! prover shows each qualifier's rules sound against its declared
//! invariant, the typechecker applies those rules, and the interpreter
//! executes programs — but nothing cross-checks the three against each
//! other. This crate generates well-typed C-subset programs
//! ([`gen`]), optionally perturbs them with qualifier-aware mutations
//! ([`mutate`]), and runs every program through three oracles
//! ([`oracle`]) that encode the paper's end-to-end claims:
//!
//! 1. **Soundness** — a cleanly checked, cast-free program never
//!    violates a proven qualifier's invariant at run time.
//! 2. **Instrumentation** — a cast's run-time check fires exactly when
//!    the cast-to invariant fails dynamically.
//! 3. **Round-trip** — pretty-print → reparse → re-typecheck yields the
//!    identical program and verdict.
//!
//! Any disagreement is shrunk to a minimal witness ([`shrink`]) and
//! reported; host panics anywhere in the pipeline are contained per
//! case and reported the same way. Runs are deterministic: the verdict
//! for `(seed, count)` is identical regardless of `jobs`, because each
//! case derives its own RNG from the base seed and results come back in
//! input order from the work-stealing pool.

pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq_cir::pretty::program_to_string;
use stq_core::Session;
use stq_util::{pool, CancelToken};

pub use gen::GenConfig;
pub use oracle::{CaseResult, Divergence, Oracle, Outcome};
pub use shrink::Target;

/// Salt separating the mutation RNG stream from the generation stream.
const MUTATE_SALT: u64 = 0x6d75_7461_7465_2121;

/// Per-case seed: golden-ratio spacing keeps neighbouring cases'
/// generator streams uncorrelated while staying a pure function of
/// `(base, index)` — the determinism-across-`jobs` property rests on it.
fn case_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fuzz campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; every case seed derives from it.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub count: usize,
    /// Worker threads (1 = inline).
    pub jobs: usize,
    /// Probability that a generated program is mutated before checking.
    pub mutate_prob: f64,
    /// Program-shape knobs passed to the generator.
    pub gen: GenConfig,
    /// Predicate-evaluation budget for shrinking each witness.
    pub shrink_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            count: 100,
            jobs: 1,
            mutate_prob: 0.5,
            gen: GenConfig::default(),
            shrink_budget: 400,
        }
    }
}

/// One case's report.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case index within the campaign.
    pub index: usize,
    /// Descriptions of applied mutations (empty = pristine generation).
    pub mutations: Vec<String>,
    /// Whether the static checker accepted the program cleanly.
    pub clean: bool,
    /// Casts the checker saw.
    pub casts: usize,
    /// The oracle battery's verdict.
    pub outcome: Outcome,
}

/// Campaign summary.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub executed: usize,
    /// Cases where every applicable oracle agreed.
    pub passes: usize,
    /// Cases the static checker accepted cleanly.
    pub clean: usize,
    /// Cases that were mutated before checking.
    pub mutated: usize,
    /// Cases the cancelled campaign never ran (always 0 when the run
    /// was not interrupted).
    pub skipped: usize,
    /// True when a [`CancelToken`] ended the campaign before every case
    /// executed: the counts above summarise a partial run.
    pub interrupted: bool,
    /// Divergences and panics, in case order, witnesses minimized.
    pub failures: Vec<CaseReport>,
}

impl FuzzReport {
    /// True when no oracle diverged and nothing panicked. An interrupted
    /// campaign can still be "clean so far" — check
    /// [`FuzzReport::interrupted`] before reading it as exhaustive.
    pub fn is_clean_run(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a fuzz campaign. Deterministic for a given `(seed, count)`
/// whatever `jobs` is; each case runs in its own [`Session`] with panics
/// contained, so one poisoned case cannot take down the campaign.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_cancellable(config, &CancelToken::default())
}

/// [`run_fuzz`] under a [`CancelToken`]: workers poll the token at case
/// boundaries, so a fired token (Ctrl-C, or a run deadline) ends the
/// campaign after the in-flight cases finish. Unreached cases are
/// counted in [`FuzzReport::skipped`] and the report is marked
/// [`FuzzReport::interrupted`]; executed cases keep their verdicts, so
/// the partial summary is still trustworthy for what it covers.
pub fn run_fuzz_cancellable(config: &FuzzConfig, cancel: &CancelToken) -> FuzzReport {
    let indices: Vec<usize> = (0..config.count).collect();
    let reports =
        pool::run_indexed_cancellable(config.jobs, indices, cancel, || {}, |_, i| {
            run_one(config, i)
        });
    let mut summary = FuzzReport {
        executed: 0,
        passes: 0,
        clean: 0,
        mutated: 0,
        skipped: 0,
        interrupted: false,
        failures: Vec::new(),
    };
    for slot in reports {
        let Some(r) = slot else {
            summary.skipped += 1;
            continue;
        };
        summary.executed += 1;
        if r.clean {
            summary.clean += 1;
        }
        if !r.mutations.is_empty() {
            summary.mutated += 1;
        }
        match r.outcome {
            Outcome::Pass => summary.passes += 1,
            _ => summary.failures.push(r),
        }
    }
    summary.interrupted = summary.skipped > 0;
    summary
}

/// Replays one corpus program through the full oracle battery, with the
/// same panic containment as a fuzz case.
pub fn replay_source(source: &str) -> CaseResult {
    let owned = source.to_owned();
    match catch_unwind(AssertUnwindSafe(|| {
        let session = Session::with_builtins();
        oracle::run_case(&session, &owned)
    })) {
        Ok(result) => result,
        Err(payload) => CaseResult {
            clean: false,
            casts: 0,
            outcome: Outcome::Panicked {
                message: panic_message(payload),
                source: source.to_owned(),
            },
        },
    }
}

fn run_one(config: &FuzzConfig, index: usize) -> CaseReport {
    match catch_unwind(AssertUnwindSafe(|| case_pipeline(config, index))) {
        Ok(report) => report,
        Err(payload) => {
            let message = panic_message(payload);
            // Rebuild the case deterministically to shrink the panic
            // witness; if even that panics, fall back to no witness.
            let source = catch_unwind(AssertUnwindSafe(|| panic_witness(config, index)))
                .unwrap_or_default();
            CaseReport {
                index,
                mutations: Vec::new(),
                clean: false,
                casts: 0,
                outcome: Outcome::Panicked { message, source },
            }
        }
    }
}

fn case_pipeline(config: &FuzzConfig, index: usize) -> CaseReport {
    let seed = case_seed(config.seed, index);
    let session = Session::with_builtins();
    let source = gen::generate_source(seed, &config.gen);
    let mut rng = StdRng::seed_from_u64(seed ^ MUTATE_SALT);
    let mut program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => {
            return CaseReport {
                index,
                mutations: Vec::new(),
                clean: false,
                casts: 0,
                outcome: Outcome::Diverged(Divergence {
                    oracle: Oracle::Generator,
                    detail: format!("generated source does not parse: {e}"),
                    source,
                }),
            }
        }
    };
    let mutations = if rng.gen_bool(config.mutate_prob) {
        mutate::mutate(&mut program, &mut rng)
    } else {
        Vec::new()
    };
    let mut result = oracle::run_oracles(&session, &program);
    if let Outcome::Diverged(d) = &mut result.outcome {
        let minimized = shrink::shrink(
            &session,
            &program,
            Target::Diverges(d.oracle),
            config.shrink_budget,
        );
        d.source = program_to_string(&minimized);
    }
    CaseReport {
        index,
        mutations,
        clean: result.clean,
        casts: result.casts,
        outcome: result.outcome,
    }
}

/// Re-derives the program a panicking case was checking and shrinks it
/// while it keeps panicking.
fn panic_witness(config: &FuzzConfig, index: usize) -> String {
    let seed = case_seed(config.seed, index);
    let session = Session::with_builtins();
    let source = gen::generate_source(seed, &config.gen);
    let mut rng = StdRng::seed_from_u64(seed ^ MUTATE_SALT);
    let Ok(mut program) = session.parse(&source) else {
        return source;
    };
    if rng.gen_bool(config.mutate_prob) {
        mutate::mutate(&mut program, &mut rng);
    }
    if !shrink::reproduces(&session, &program, Target::Panics) {
        return program_to_string(&program);
    }
    let minimized = shrink::shrink(&session, &program, Target::Panics, config.shrink_budget);
    program_to_string(&minimized)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_identical_across_job_counts() {
        let mut base: Option<String> = None;
        for jobs in [1, 4, 8] {
            let report = run_fuzz(&FuzzConfig {
                count: 24,
                jobs,
                ..FuzzConfig::default()
            });
            let rendered = format!("{report:?}");
            match &base {
                None => base = Some(rendered),
                Some(b) => assert_eq!(b, &rendered, "jobs={jobs} changed the verdict"),
            }
        }
    }

    #[test]
    fn a_bounded_campaign_finds_no_divergences() {
        let report = run_fuzz(&FuzzConfig {
            count: 60,
            jobs: 4,
            ..FuzzConfig::default()
        });
        assert_eq!(report.executed, 60);
        assert!(
            report.is_clean_run(),
            "unexpected failures: {:#?}",
            report.failures
        );
        assert!(report.clean > 0, "campaign never produced a clean program");
        assert!(report.mutated > 0, "campaign never mutated a program");
    }

    #[test]
    fn pre_cancelled_campaign_skips_every_case() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = run_fuzz_cancellable(
            &FuzzConfig {
                count: 20,
                jobs: 4,
                ..FuzzConfig::default()
            },
            &cancel,
        );
        assert!(report.interrupted);
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped, 20);
        assert!(report.is_clean_run(), "no case ran, so none failed");
    }

    #[test]
    fn cancelling_mid_campaign_keeps_executed_verdicts() {
        // Inline run (jobs=1): cancel fires from a case-boundary poll
        // side effect by cancelling after a fixed wall-time-free marker —
        // here we cancel before the run and verify the boundary check,
        // and separately verify an unfired token executes everything.
        let cancel = CancelToken::new();
        let full = run_fuzz_cancellable(
            &FuzzConfig {
                count: 12,
                ..FuzzConfig::default()
            },
            &cancel,
        );
        assert!(!full.interrupted);
        assert_eq!(full.executed, 12);
        assert_eq!(full.skipped, 0);
        let plain = run_fuzz(&FuzzConfig {
            count: 12,
            ..FuzzConfig::default()
        });
        assert_eq!(format!("{plain:?}"), format!("{full:?}"));
    }

    #[test]
    fn replay_runs_the_full_battery_on_raw_source() {
        let ok = replay_source("int pos f(int pos a1) { int pos v1 = a1 * 2; return v1; }");
        assert!(ok.clean);
        assert!(matches!(ok.outcome, Outcome::Pass));
        let bad = replay_source("int f( {");
        assert!(matches!(
            bad.outcome,
            Outcome::Diverged(Divergence {
                oracle: Oracle::Generator,
                ..
            })
        ));
    }
}
