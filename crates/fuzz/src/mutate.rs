//! Qualifier-aware program mutations.
//!
//! Mutations run on the parsed AST (between generation and the oracle
//! pipeline) and deliberately step *outside* the clean-by-construction
//! space: a cast insertion keeps the program accepted but adds run-time
//! checks (driving the instrumentation oracle), an annotation flip may
//! make it rejected (driving verdict round-tripping), and an operand
//! swap changes semantics under the same syntax shapes.

use rand::rngs::StdRng;
use rand::Rng;
use std::mem;
use stq_cir::ast::*;
use stq_util::Symbol;

/// Value qualifiers used for int-shaped mutation targets.
const INT_QUALS: [&str; 3] = ["pos", "neg", "nonzero"];

/// Applies 1–3 random mutations and returns a description of each (empty
/// when no mutation site exists).
pub fn mutate(program: &mut Program, rng: &mut StdRng) -> Vec<String> {
    let n = rng.gen_range(1..=3u32);
    let mut applied = Vec::new();
    for _ in 0..n {
        let done = match rng.gen_range(0u32..3) {
            0 => cast_insert(program, rng),
            1 => annotation_flip(program, rng),
            _ => operand_swap(program, rng),
        };
        if let Some(desc) = done {
            applied.push(desc);
        }
    }
    applied
}

/// Whether a cast/flip qualifier can be picked for this type shape.
fn flip_qual(ty: &QualType, pick: usize) -> Option<&'static str> {
    match &ty.ty {
        Ty::Ptr(_) => Some("nonnull"),
        Ty::Base(BaseTy::Int | BaseTy::Char) => Some(INT_QUALS[pick % INT_QUALS.len()]),
        Ty::Base(BaseTy::Void | BaseTy::Struct(_)) => None,
    }
}

// ----- statement walking -----

fn for_each_stmt_mut(p: &mut Program, f: &mut impl FnMut(&mut StmtKind, &QualType)) {
    for func in &mut p.funcs {
        let ret = func.sig.ret.clone();
        for s in &mut func.body {
            stmt_rec(s, &ret, f);
        }
    }
}

fn stmt_rec(s: &mut Stmt, ret: &QualType, f: &mut impl FnMut(&mut StmtKind, &QualType)) {
    f(&mut s.kind, ret);
    match &mut s.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                stmt_rec(s, ret, f);
            }
        }
        StmtKind::If(_, then, els) => {
            stmt_rec(then, ret, f);
            if let Some(e) = els {
                stmt_rec(e, ret, f);
            }
        }
        StmtKind::While(_, body) => stmt_rec(body, ret, f),
        StmtKind::Instr(_) | StmtKind::Return(_) | StmtKind::Decl(_) => {}
    }
}

// ----- cast insertion -----

fn cast_insert(p: &mut Program, rng: &mut StdRng) -> Option<String> {
    let pick = rng.gen_range(0..INT_QUALS.len());
    let mut count = 0usize;
    for_each_stmt_mut(p, &mut |k, ret| match k {
        StmtKind::Decl(d) if d.init.is_some() && flip_qual(&d.ty, 0).is_some() => count += 1,
        StmtKind::Return(Some(_)) if flip_qual(ret, 0).is_some() => count += 1,
        _ => {}
    });
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    let mut i = 0usize;
    let mut desc = None;
    for_each_stmt_mut(p, &mut |k, ret| {
        match k {
            StmtKind::Decl(d) if d.init.is_some() && flip_qual(&d.ty, 0).is_some() => {
                if i == target && desc.is_none() {
                    let q = flip_qual(&d.ty, pick).expect("shape checked");
                    let ty = d.ty.clone().with_qual(q);
                    let e = d.init.take().expect("init checked");
                    d.init = Some(e.cast(ty));
                    desc = Some(format!("cast-insert {q} on decl {}", d.name));
                }
                i += 1;
            }
            StmtKind::Return(Some(e)) if flip_qual(ret, 0).is_some() => {
                if i == target && desc.is_none() {
                    let q = flip_qual(ret, pick).expect("shape checked");
                    let ty = ret.clone().with_qual(q);
                    let inner = mem::replace(e, Expr::int(0));
                    *e = inner.cast(ty);
                    desc = Some(format!("cast-insert {q} on return"));
                }
                i += 1;
            }
            _ => {}
        }
    });
    desc
}

// ----- annotation flips -----

fn annotation_flip(p: &mut Program, rng: &mut StdRng) -> Option<String> {
    let pick = rng.gen_range(0..INT_QUALS.len());
    // Sites: every local declaration, parameter, and return type whose
    // shape supports a value qualifier.
    let mut decl_count = 0usize;
    for_each_stmt_mut(p, &mut |k, _| {
        if let StmtKind::Decl(d) = k {
            if flip_qual(&d.ty, 0).is_some() {
                decl_count += 1;
            }
        }
    });
    let mut sig_sites = 0usize;
    for func in &p.funcs {
        if flip_qual(&func.sig.ret, 0).is_some() {
            sig_sites += 1;
        }
        for (_, ty) in &func.sig.params {
            if flip_qual(ty, 0).is_some() {
                sig_sites += 1;
            }
        }
    }
    let total = decl_count + sig_sites;
    if total == 0 {
        return None;
    }
    let target = rng.gen_range(0..total);
    if target < decl_count {
        let mut i = 0usize;
        let mut desc = None;
        for_each_stmt_mut(p, &mut |k, _| {
            if let StmtKind::Decl(d) = k {
                if flip_qual(&d.ty, 0).is_some() {
                    if i == target && desc.is_none() {
                        desc = Some(toggle(&mut d.ty, pick, &format!("decl {}", d.name)));
                    }
                    i += 1;
                }
            }
        });
        desc
    } else {
        let mut i = decl_count;
        for func in &mut p.funcs {
            if flip_qual(&func.sig.ret, 0).is_some() {
                if i == target {
                    let name = func.name;
                    return Some(toggle(&mut func.sig.ret, pick, &format!("ret of {name}")));
                }
                i += 1;
            }
            for (pname, ty) in &mut func.sig.params {
                if flip_qual(ty, 0).is_some() {
                    if i == target {
                        return Some(toggle(ty, pick, &format!("param {pname}")));
                    }
                    i += 1;
                }
            }
        }
        None
    }
}

fn toggle(ty: &mut QualType, pick: usize, site: &str) -> String {
    let q = flip_qual(ty, pick).expect("caller checked shape");
    let sym = Symbol::intern(q);
    if ty.quals.remove(&sym) {
        format!("flip: drop {q} on {site}")
    } else {
        ty.quals.insert(sym);
        format!("flip: add {q} on {site}")
    }
}

// ----- operand swaps -----

pub(crate) fn for_each_expr_mut(p: &mut Program, f: &mut impl FnMut(&mut Expr)) {
    for_each_stmt_mut(p, &mut |k, _| match k {
        StmtKind::Instr(instr) => match &mut instr.kind {
            InstrKind::Set(lv, e) | InstrKind::Alloc(lv, e) => {
                lval_exprs(lv, f);
                expr_rec(e, f);
            }
            InstrKind::Call(dst, _, args) => {
                if let Some(lv) = dst {
                    lval_exprs(lv, f);
                }
                for a in args {
                    expr_rec(a, f);
                }
            }
            InstrKind::RuntimeCheck(_, e) => expr_rec(e, f),
        },
        StmtKind::If(cond, ..) | StmtKind::While(cond, _) => expr_rec(cond, f),
        StmtKind::Return(Some(e)) => expr_rec(e, f),
        StmtKind::Decl(d) => {
            if let Some(e) = &mut d.init {
                expr_rec(e, f);
            }
        }
        StmtKind::Block(_) | StmtKind::Return(None) => {}
    });
}

fn expr_rec(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Unop(_, a) | ExprKind::Cast(_, a) => expr_rec(a, f),
        ExprKind::Binop(_, a, b) => {
            expr_rec(a, f);
            expr_rec(b, f);
        }
        ExprKind::Lval(lv) | ExprKind::AddrOf(lv) => lval_exprs(lv, f),
        ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Null | ExprKind::SizeOf(_) => {}
    }
}

fn lval_exprs(lv: &mut Lvalue, f: &mut impl FnMut(&mut Expr)) {
    match &mut lv.kind {
        LvalKind::Var(_) => {}
        LvalKind::Deref(e) => expr_rec(e, f),
        LvalKind::Field(inner, _) => lval_exprs(inner, f),
    }
}

fn operand_swap(p: &mut Program, rng: &mut StdRng) -> Option<String> {
    let mut count = 0usize;
    for_each_expr_mut(p, &mut |e| {
        if matches!(e.kind, ExprKind::Binop(..)) {
            count += 1;
        }
    });
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    let mut i = 0usize;
    let mut desc = None;
    for_each_expr_mut(p, &mut |e| {
        if let ExprKind::Binop(op, a, b) = &mut e.kind {
            if i == target && desc.is_none() {
                mem::swap(a, b);
                desc = Some(format!("operand-swap around {op}"));
            }
            i += 1;
        }
    });
    desc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stq_cir::parse::parse_program;
    use stq_cir::pretty::program_to_string;

    const QUALS: [&str; 4] = ["pos", "neg", "nonzero", "nonnull"];

    #[test]
    fn mutations_keep_programs_printable_and_parseable() {
        let src = "int pos f(int pos a) {
            int pos x = a * 2;
            int* p = NULL;
            if (x > 3) { x = 7; }
            return x;
        }";
        for seed in 0..40 {
            let mut p = parse_program(src, &QUALS).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let applied = mutate(&mut p, &mut rng);
            assert!(!applied.is_empty(), "seed {seed}: no mutation applied");
            let printed = program_to_string(&p);
            parse_program(&printed, &QUALS)
                .unwrap_or_else(|e| panic!("seed {seed}: mutated program unparseable: {e}\n{printed}"));
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let src = "int f(int a) { int x = a + 1; return x; }";
        let render = |seed| {
            let mut p = parse_program(src, &QUALS).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let d = mutate(&mut p, &mut rng);
            (d, program_to_string(&p))
        };
        assert_eq!(render(9), render(9));
    }
}
