//! Seeded generation of statically clean C-subset programs.
//!
//! The port of the `crates/lambda` generator idea to the full C subset:
//! programs are clean *by construction* because every expression that
//! flows into a qualified position is built from exactly the derivation
//! rules of the builtin qualifier library (`pos` is a positive literal, a
//! product of two `pos` expressions, or a negated `neg` expression — and
//! nothing else), every dereference goes through a `nonnull` pointer,
//! every division and modulo gets a `nonzero`-derivable denominator,
//! loops are counter-bounded, and the call graph is acyclic.
//!
//! The generator emits *source text*, not an AST: the front end is part
//! of the pipeline under test, so every generated program also exercises
//! the lexer and parser.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq_cir::ast::Program;
use stq_cir::interp::Value;

/// Generator limits.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of functions per program (the last one is the entry).
    pub max_fns: usize,
    /// Maximum statements per block.
    pub max_block: usize,
    /// Maximum expression and block nesting depth.
    pub max_depth: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_fns: 3,
            max_block: 4,
            max_depth: 3,
        }
    }
}

/// The value-qualifier sets the generator knows how to derive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Quals {
    Plain,
    Pos,
    Neg,
    Nonzero,
    PosNonzero,
    NegNonzero,
}

impl Quals {
    fn render(self) -> &'static str {
        match self {
            Quals::Plain => "int",
            Quals::Pos => "int pos",
            Quals::Neg => "int neg",
            Quals::Nonzero => "int nonzero",
            Quals::PosNonzero => "int nonzero pos",
            Quals::NegNonzero => "int neg nonzero",
        }
    }

    /// Whether a variable declared with `self` can stand where `req` is
    /// required (mirrors the case rules: `pos(E)` or `neg(E)` implies
    /// `nonzero(E)`).
    fn satisfies(self, req: Quals) -> bool {
        match req {
            Quals::Plain => true,
            Quals::Pos => matches!(self, Quals::Pos | Quals::PosNonzero),
            Quals::Neg => matches!(self, Quals::Neg | Quals::NegNonzero),
            Quals::Nonzero => self != Quals::Plain,
            Quals::PosNonzero | Quals::NegNonzero => unreachable!("compound reqs are lowered"),
        }
    }
}

#[derive(Clone, Debug)]
enum VTy {
    Int(Quals),
    Ptr { nonnull: bool },
}

#[derive(Clone, Debug)]
struct Var {
    name: String,
    ty: VTy,
    /// Loop counters are read-only for generated assignments: the loop
    /// header owns the increment, which is what bounds the loop.
    assignable: bool,
}

#[derive(Clone, Debug)]
struct FnInfo {
    name: String,
    ret: Quals,
    params: Vec<Quals>,
}

/// Generates a statically clean program from a seed. Same seed and
/// config always produce byte-identical source.
pub fn generate_source(seed: u64, config: &GenConfig) -> String {
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg: *config,
        fresh: 0,
        fns: Vec::new(),
        out: String::new(),
    };
    gen.program();
    gen.out
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    fresh: u32,
    fns: Vec<FnInfo>,
    out: String,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn quals(&mut self) -> Quals {
        match self.rng.gen_range(0u32..8) {
            0..=2 => Quals::Plain,
            3 => Quals::Pos,
            4 => Quals::Neg,
            5 => Quals::Nonzero,
            6 => Quals::PosNonzero,
            _ => Quals::NegNonzero,
        }
    }

    /// Lowers a compound requirement to the rule family that derives it.
    fn lower(req: Quals) -> Quals {
        match req {
            Quals::PosNonzero => Quals::Pos,
            Quals::NegNonzero => Quals::Neg,
            other => other,
        }
    }

    fn int_vars<'a>(&self, scope: &'a [Var], req: Quals) -> Vec<&'a Var> {
        scope
            .iter()
            .filter(|v| matches!(&v.ty, VTy::Int(q) if q.satisfies(req)))
            .collect()
    }

    fn int_expr(&mut self, depth: u32, req: Quals, scope: &[Var]) -> String {
        match Self::lower(req) {
            Quals::Pos => self.pos_expr(depth, scope),
            Quals::Neg => self.neg_expr(depth, scope),
            Quals::Nonzero => self.nonzero_expr(depth, scope),
            _ => self.plain_expr(depth, scope),
        }
    }

    fn pos_expr(&mut self, depth: u32, scope: &[Var]) -> String {
        let vars = self.int_vars(scope, Quals::Pos);
        let max = if depth == 0 { 2 } else { 4 };
        match self.rng.gen_range(0u32..max) {
            0 => self.rng.gen_range(1i64..=9).to_string(),
            1 if !vars.is_empty() => vars[self.rng.gen_range(0..vars.len())].name.clone(),
            1 => self.rng.gen_range(1i64..=9).to_string(),
            2 => format!(
                "({} * {})",
                self.pos_expr(depth - 1, scope),
                self.pos_expr(depth - 1, scope)
            ),
            _ => format!("(-{})", self.neg_expr(depth - 1, scope)),
        }
    }

    fn neg_expr(&mut self, depth: u32, scope: &[Var]) -> String {
        let vars = self.int_vars(scope, Quals::Neg);
        let max = if depth == 0 { 2 } else { 4 };
        match self.rng.gen_range(0u32..max) {
            // `(0 - k)` has no derivation rule; a negative literal does.
            0 => format!("(-{})", self.rng.gen_range(1i64..=9)),
            1 if !vars.is_empty() => vars[self.rng.gen_range(0..vars.len())].name.clone(),
            1 => format!("(-{})", self.rng.gen_range(1i64..=9)),
            2 => {
                let (a, b) = (self.pos_expr(depth - 1, scope), self.neg_expr(depth - 1, scope));
                if self.rng.gen_bool(0.5) {
                    format!("({a} * {b})")
                } else {
                    format!("({b} * {a})")
                }
            }
            _ => format!("(-{})", self.pos_expr(depth - 1, scope)),
        }
    }

    fn nonzero_expr(&mut self, depth: u32, scope: &[Var]) -> String {
        let vars = self.int_vars(scope, Quals::Nonzero);
        let max = if depth == 0 { 2 } else { 5 };
        match self.rng.gen_range(0u32..max) {
            0 if !vars.is_empty() => vars[self.rng.gen_range(0..vars.len())].name.clone(),
            0 | 1 => {
                let k = self.rng.gen_range(1i64..=9);
                if self.rng.gen_bool(0.5) {
                    k.to_string()
                } else {
                    format!("(-{k})")
                }
            }
            2 => self.pos_expr(depth - 1, scope),
            3 => self.neg_expr(depth - 1, scope),
            _ => format!(
                "({} * {})",
                self.nonzero_expr(depth - 1, scope),
                self.nonzero_expr(depth - 1, scope)
            ),
        }
    }

    fn plain_expr(&mut self, depth: u32, scope: &[Var]) -> String {
        let vars = self.int_vars(scope, Quals::Plain);
        let derefable: Vec<&Var> = scope
            .iter()
            .filter(|v| matches!(v.ty, VTy::Ptr { nonnull: true }))
            .collect();
        let max = if depth == 0 { 2 } else { 7 };
        match self.rng.gen_range(0u32..max) {
            0 => self.rng.gen_range(-9i64..=9).to_string(),
            1 if !vars.is_empty() => vars[self.rng.gen_range(0..vars.len())].name.clone(),
            1 => self.rng.gen_range(-9i64..=9).to_string(),
            2 => {
                let op = ["+", "-", "*"][self.rng.gen_range(0..3usize)];
                format!(
                    "({} {op} {})",
                    self.plain_expr(depth - 1, scope),
                    self.plain_expr(depth - 1, scope)
                )
            }
            3 => {
                // Guarded division / modulo: the denominator is derived
                // by the nonzero rules, so the `/` restrict is satisfied
                // statically and neither operator can trap dynamically.
                let op = if self.rng.gen_bool(0.5) { "/" } else { "%" };
                format!(
                    "({} {op} {})",
                    self.plain_expr(depth - 1, scope),
                    self.nonzero_expr(depth - 1, scope)
                )
            }
            4 => {
                let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
                format!(
                    "({} {op} {})",
                    self.plain_expr(depth - 1, scope),
                    self.plain_expr(depth - 1, scope)
                )
            }
            5 if !derefable.is_empty() => {
                format!("(*{})", derefable[self.rng.gen_range(0..derefable.len())].name)
            }
            // The inner expression can be a bare negative literal, so it
            // must be parenthesized or `-` + `-9` fuses into `--`.
            _ => format!("(-({}))", self.plain_expr(depth - 1, scope)),
        }
    }

    /// A pointer expression. `nonnull` requires either a plain-int
    /// variable to take the address of (the `&L` case rule) or a nonnull
    /// pointer variable already in scope; the caller checks
    /// [`Gen::can_make_nonnull`] first.
    fn ptr_expr(&mut self, nonnull: bool, scope: &[Var]) -> String {
        // Loop counters are excluded (`assignable`): a store through a
        // pointer aliasing the counter could unbound the loop.
        let addressable: Vec<&Var> = scope
            .iter()
            .filter(|v| v.assignable && matches!(v.ty, VTy::Int(Quals::Plain)))
            .collect();
        let nonnull_ptrs: Vec<&Var> = scope
            .iter()
            .filter(|v| matches!(v.ty, VTy::Ptr { nonnull: true }))
            .collect();
        if nonnull {
            let use_addr = if nonnull_ptrs.is_empty() {
                true
            } else if addressable.is_empty() {
                false
            } else {
                self.rng.gen_bool(0.7)
            };
            if use_addr {
                format!("(&{})", addressable[self.rng.gen_range(0..addressable.len())].name)
            } else {
                nonnull_ptrs[self.rng.gen_range(0..nonnull_ptrs.len())]
                    .name
                    .clone()
            }
        } else {
            let any_ptrs: Vec<&Var> = scope
                .iter()
                .filter(|v| matches!(v.ty, VTy::Ptr { .. }))
                .collect();
            match self.rng.gen_range(0u32..3) {
                0 if !any_ptrs.is_empty() => {
                    any_ptrs[self.rng.gen_range(0..any_ptrs.len())].name.clone()
                }
                1 if !addressable.is_empty() => {
                    format!("(&{})", addressable[self.rng.gen_range(0..addressable.len())].name)
                }
                _ => "NULL".to_owned(),
            }
        }
    }

    fn can_make_nonnull(&self, scope: &[Var]) -> bool {
        scope.iter().any(|v| {
            (v.assignable && matches!(v.ty, VTy::Int(Quals::Plain)))
                || matches!(v.ty, VTy::Ptr { nonnull: true })
        })
    }

    fn cond_expr(&mut self, depth: u32, scope: &[Var]) -> String {
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
        format!(
            "({} {op} {})",
            self.plain_expr(depth, scope),
            self.plain_expr(depth, scope)
        )
    }

    fn line(&mut self, indent: usize, text: &str) {
        for _ in 0..indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block(&mut self, depth: u32, indent: usize, scope: &mut Vec<Var>) {
        let n = self.rng.gen_range(1..=self.cfg.max_block);
        let mark = scope.len();
        for _ in 0..n {
            self.stmt(depth, indent, scope);
        }
        scope.truncate(mark);
    }

    fn stmt(&mut self, depth: u32, indent: usize, scope: &mut Vec<Var>) {
        let choice = if depth == 0 {
            self.rng.gen_range(0u32..5)
        } else {
            self.rng.gen_range(0u32..10)
        };
        match choice {
            // Qualified (or plain) int declaration with a conforming
            // initializer.
            0 | 1 => {
                let q = self.quals();
                let name = self.fresh("v");
                let init = self.int_expr(depth, q, scope);
                self.line(indent, &format!("{} {name} = {init};", q.render()));
                scope.push(Var {
                    name,
                    ty: VTy::Int(q),
                    assignable: true,
                });
            }
            // Pointer declaration (plain, nonnull, or malloc-backed).
            2 => {
                let name = self.fresh("p");
                match self.rng.gen_range(0u32..3) {
                    0 if self.can_make_nonnull(scope) => {
                        let init = self.ptr_expr(true, scope);
                        self.line(indent, &format!("int* nonnull {name} = {init};"));
                        scope.push(Var {
                            name,
                            ty: VTy::Ptr { nonnull: true },
                            assignable: true,
                        });
                    }
                    1 => {
                        let cells = self.rng.gen_range(1i64..=8);
                        self.line(indent, &format!("int* {name} = malloc({cells});"));
                        scope.push(Var {
                            name,
                            ty: VTy::Ptr { nonnull: false },
                            assignable: true,
                        });
                    }
                    _ => {
                        let init = self.ptr_expr(false, scope);
                        self.line(indent, &format!("int* {name} = {init};"));
                        scope.push(Var {
                            name,
                            ty: VTy::Ptr { nonnull: false },
                            assignable: true,
                        });
                    }
                }
            }
            // Assignment to an int variable, conforming to its quals.
            3 | 4 => {
                let targets: Vec<(String, Quals)> = scope
                    .iter()
                    .filter(|v| v.assignable)
                    .filter_map(|v| match &v.ty {
                        VTy::Int(q) => Some((v.name.clone(), *q)),
                        VTy::Ptr { .. } => None,
                    })
                    .collect();
                if targets.is_empty() {
                    return self.stmt_fallback(depth, indent, scope);
                }
                let (name, q) = targets[self.rng.gen_range(0..targets.len())].clone();
                let rhs = self.int_expr(depth, q, scope);
                self.line(indent, &format!("{name} = {rhs};"));
            }
            // Assignment to a pointer variable.
            5 => {
                let targets: Vec<(String, bool)> = scope
                    .iter()
                    .filter(|v| v.assignable)
                    .filter_map(|v| match v.ty {
                        VTy::Ptr { nonnull } => Some((v.name.clone(), nonnull)),
                        VTy::Int(_) => None,
                    })
                    .collect();
                if targets.is_empty() {
                    return self.stmt_fallback(depth, indent, scope);
                }
                let (name, nonnull) = targets[self.rng.gen_range(0..targets.len())].clone();
                if nonnull && !self.can_make_nonnull(scope) {
                    return self.stmt_fallback(depth, indent, scope);
                }
                let rhs = self.ptr_expr(nonnull, scope);
                self.line(indent, &format!("{name} = {rhs};"));
            }
            // Store through a nonnull pointer (pointee is plain int).
            6 => {
                let ptrs: Vec<String> = scope
                    .iter()
                    .filter(|v| matches!(v.ty, VTy::Ptr { nonnull: true }))
                    .map(|v| v.name.clone())
                    .collect();
                if ptrs.is_empty() {
                    return self.stmt_fallback(depth, indent, scope);
                }
                let p = ptrs[self.rng.gen_range(0..ptrs.len())].clone();
                let rhs = self.plain_expr(depth, scope);
                self.line(indent, &format!("*{p} = {rhs};"));
            }
            // Branch.
            7 => {
                let cond = self.cond_expr(depth - 1, scope);
                self.line(indent, &format!("if ({cond}) {{"));
                self.block(depth - 1, indent + 1, scope);
                if self.rng.gen_bool(0.4) {
                    self.line(indent, "} else {");
                    self.block(depth - 1, indent + 1, scope);
                }
                self.line(indent, "}");
            }
            // Counter-bounded loop: the generator owns the increment, so
            // termination is by construction.
            8 => {
                let i = self.fresh("i");
                let bound = self.rng.gen_range(1i64..=4);
                self.line(indent, &format!("int {i} = 0;"));
                self.line(indent, &format!("while ({i} < {bound}) {{"));
                scope.push(Var {
                    name: i.clone(),
                    ty: VTy::Int(Quals::Plain),
                    assignable: false,
                });
                self.block(depth - 1, indent + 1, scope);
                scope.pop();
                self.line(indent + 1, &format!("{i} = {i} + 1;"));
                self.line(indent, "}");
            }
            // Call an earlier function (the call graph is acyclic) or
            // printf with a matched-arity format string.
            _ => {
                if self.fns.is_empty() || self.rng.gen_bool(0.3) {
                    let arg = self.plain_expr(depth.saturating_sub(1), scope);
                    self.line(indent, &format!("printf(\"t %d\", {arg});"));
                    return;
                }
                let f = self.fns[self.rng.gen_range(0..self.fns.len())].clone();
                let args: Vec<String> = f
                    .params
                    .iter()
                    .map(|q| self.int_expr(depth.saturating_sub(1), *q, scope))
                    .collect();
                let call = format!("{}({})", f.name, args.join(", "));
                if self.rng.gen_bool(0.7) {
                    // A qualified result target requires the callee's
                    // return type to carry the quals syntactically; use
                    // either exactly those quals or none.
                    let q = if self.rng.gen_bool(0.5) { f.ret } else { Quals::Plain };
                    let name = self.fresh("v");
                    self.line(indent, &format!("{} {name} = {call};", q.render()));
                    scope.push(Var {
                        name,
                        ty: VTy::Int(q),
                        assignable: true,
                    });
                } else {
                    self.line(indent, &format!("{call};"));
                }
            }
        }
    }

    /// Fallback when the chosen statement kind has no viable target: a
    /// plain declaration, which is always possible.
    fn stmt_fallback(&mut self, depth: u32, indent: usize, scope: &mut Vec<Var>) {
        let name = self.fresh("v");
        let init = self.plain_expr(depth, scope);
        self.line(indent, &format!("int {name} = {init};"));
        scope.push(Var {
            name,
            ty: VTy::Int(Quals::Plain),
            assignable: true,
        });
    }

    fn program(&mut self) {
        let nfns = self.rng.gen_range(1..=self.cfg.max_fns);
        for _ in 0..nfns {
            let name = self.fresh("f");
            let ret = self.quals();
            let nparams = self.rng.gen_range(0..=2usize);
            let params: Vec<(String, Quals)> = (0..nparams)
                .map(|_| {
                    let q = self.quals();
                    (self.fresh("a"), q)
                })
                .collect();
            let rendered: Vec<String> = params
                .iter()
                .map(|(n, q)| format!("{} {n}", q.render()))
                .collect();
            self.line(
                0,
                &format!("{} {name}({}) {{", ret.render(), rendered.join(", ")),
            );
            let mut scope: Vec<Var> = params
                .iter()
                .map(|(n, q)| Var {
                    name: n.clone(),
                    ty: VTy::Int(*q),
                    assignable: true,
                })
                .collect();
            // Guarantee an addressable plain int for `&L` derivations.
            let seed_var = self.fresh("v");
            let seed_init = self.rng.gen_range(-9i64..=9);
            self.line(1, &format!("int {seed_var} = {seed_init};"));
            scope.push(Var {
                name: seed_var,
                ty: VTy::Int(Quals::Plain),
                assignable: true,
            });
            self.block(self.cfg.max_depth, 1, &mut scope);
            let ret_expr = self.int_expr(self.cfg.max_depth.min(2), ret, &scope);
            self.line(1, &format!("return {ret_expr};"));
            self.line(0, "}");
            self.fns.push(FnInfo {
                name,
                ret,
                params: params.into_iter().map(|(_, q)| q).collect(),
            });
        }
    }
}

/// The entry function of a generated (or corpus) program: the last
/// definition, which in generated programs can reach every other
/// function through the acyclic call graph.
pub fn entry_name(program: &Program) -> Option<String> {
    program.funcs.last().map(|f| f.name.as_str().to_owned())
}

/// Deterministically derives entry arguments satisfying the
/// *conjunction* of the entry's declared parameter qualifiers:
/// `pos`-qualified parameters get a positive value, `neg` a negative
/// one, bare `nonzero` a nonzero one, plain ints a small value, and
/// plain pointers `NULL`. Returns `None` when a parameter's qualifiers
/// cannot be satisfied from outside — a `nonnull` pointer has no
/// portable address value, `pos neg` is unsatisfiable (no statically
/// clean caller exists, so the soundness claim says nothing about such
/// a call), and an unrecognized qualifier's invariant is unknown here —
/// in which case the dynamic oracles are skipped.
pub fn entry_args(program: &Program) -> Option<Vec<Value>> {
    let f = program.funcs.last()?;
    let mut args = Vec::with_capacity(f.sig.params.len());
    for (i, (_, ty)) in f.sig.params.iter().enumerate() {
        let quals: Vec<&str> = ty.quals.iter().map(|q| q.as_str()).collect();
        let v = if ty.pointee().is_some() {
            // `nonnull` has no fabricable address; any other pointer
            // qualifier (`unique`, `unaliased`, …) constrains the heap
            // in ways a synthetic argument cannot honour.
            if !quals.is_empty() {
                return None;
            }
            Value::NULL
        } else {
            let pos = quals.contains(&"pos");
            let neg = quals.contains(&"neg");
            if quals
                .iter()
                .any(|q| !matches!(*q, "pos" | "neg" | "nonzero"))
            {
                return None;
            }
            if pos && neg {
                // Unsatisfiable conjunction: no value is both positive
                // and negative, and no derivation rule can prove one, so
                // no well-typed call site can reach this function.
                return None;
            }
            if pos {
                Value::Int(7 + i as i64)
            } else if neg {
                Value::Int(-(7 + i as i64))
            } else if quals.contains(&"nonzero") {
                Value::Int(5 + i as i64)
            } else {
                Value::Int(i as i64)
            }
        };
        args.push(v);
    }
    Some(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_core::Session;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0, 1, 42, 1000] {
            assert_eq!(generate_source(seed, &cfg), generate_source(seed, &cfg));
        }
    }

    #[test]
    fn generation_varies_with_seed() {
        let cfg = GenConfig::default();
        let distinct: std::collections::HashSet<String> =
            (0..50).map(|s| generate_source(s, &cfg)).collect();
        assert!(distinct.len() > 40, "only {} distinct programs", distinct.len());
    }

    #[test]
    fn generated_programs_parse_and_check_clean() {
        let session = Session::with_builtins();
        let cfg = GenConfig::default();
        for seed in 0..300 {
            let src = generate_source(seed, &cfg);
            let program = session
                .parse(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{src}"));
            let result = session.check(&program);
            assert!(
                result.is_clean(),
                "seed {seed}: not clean:\n{}\n{src}",
                result.diags
            );
        }
    }

    #[test]
    fn entry_args_satisfy_declared_quals() {
        let session = Session::with_builtins();
        let p = session
            .parse("int f(int pos a, int neg b, int nonzero c, int d) { return d; }")
            .unwrap();
        let args = entry_args(&p).unwrap();
        assert!(matches!(args[0], Value::Int(x) if x > 0));
        assert!(matches!(args[1], Value::Int(x) if x < 0));
        assert!(matches!(args[2], Value::Int(x) if x != 0));
        assert_eq!(args.len(), 4);
    }

    #[test]
    fn entry_args_refuse_nonnull_pointer_params() {
        let session = Session::with_builtins();
        let p = session
            .parse("int f(int* nonnull p) { return *p; }")
            .unwrap();
        assert_eq!(entry_args(&p), None);
    }
}
