//! Fuzz tests for the error-resilient qualifier-definition parser.
//!
//! Mirrors `stq-cir`'s `parse_fuzz`: the resilient entry point must be
//! total over arbitrary byte soup, token soup drawn from the DSL's
//! vocabulary, and corrupted-but-plausible definition files. A silent
//! parse (no diagnostics) must mean the strict parser accepts the
//! source too.

use proptest::prelude::*;
use stq_qualspec::parse::{parse_qualifiers, parse_qualifiers_resilient};

/// Fragments the DSL lexer knows, biased toward the keywords that
/// drive clause recovery.
const VOCAB: &[&str] = &[
    "value",
    "ref",
    "qualifier",
    "case",
    "restrict",
    "assign",
    "disallow",
    "ondecl",
    "invariant",
    "of",
    "decl",
    "where",
    "int",
    "char",
    "Expr",
    "Const",
    "Var",
    "E",
    "E1",
    "E2",
    "C",
    "L",
    "pos",
    "taint",
    "value(E)",
    "(",
    ")",
    ",",
    ":",
    ";",
    "+",
    "*",
    "==",
    "!=",
    ">",
    "&&",
    "||",
    "0",
    "1",
];

fn tokens_to_source(idxs: &[usize]) -> String {
    idxs.iter()
        .map(|i| VOCAB[i % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A well-formed two-definition file used as the corruption seed.
const VALID: &str = "value qualifier pos(int Expr E)
    case E of
        decl int Const C: C, where C > 0
    invariant value(E) > 0

ref qualifier watched(int Var L)
    disallow &L";

/// Totality: never a panic; a silent resilient parse implies strict
/// acceptance with the same number of definitions.
fn assert_total(src: &str) {
    let (defs, errors) = parse_qualifiers_resilient(src);
    if errors.is_empty() {
        match parse_qualifiers(src) {
            Ok(strict) => assert_eq!(
                defs.len(),
                strict.len(),
                "silent resilient parse disagrees with strict parse on:\n{src}"
            ),
            Err(e) => panic!("resilient parse was silent but strict parse failed ({e}) on:\n{src}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&src);
    }

    #[test]
    fn token_soup_never_panics(idxs in prop::collection::vec(any::<usize>(), 0..96)) {
        let src = tokens_to_source(&idxs);
        assert_total(&src);
    }

    #[test]
    fn corrupted_valid_source_still_yields_diagnostics_or_defs(
        at in any::<usize>(),
        garbage in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut pos = at % (VALID.len() + 1);
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut src = String::new();
        src.push_str(&VALID[..pos]);
        src.push_str(&String::from_utf8_lossy(&garbage));
        src.push_str(&VALID[pos..]);
        assert_total(&src);
    }

    #[test]
    fn truncated_valid_source_never_panics(at in any::<usize>()) {
        let mut pos = at % (VALID.len() + 1);
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        assert_total(&VALID[..pos]);
    }
}
