//! The qualifier registry: the set of qualifier definitions in force for
//! a typechecking or soundness-checking session.

use crate::ast::QualifierDef;
use crate::builtins;
use crate::parse::{parse_qualifiers, SpecError};
use crate::wf::check_def;
use std::collections::BTreeSet;
use stq_util::{Diagnostics, Symbol};

/// A collection of qualifier definitions, keyed by name.
///
/// # Examples
///
/// ```
/// use stq_qualspec::registry::Registry;
///
/// let registry = Registry::builtins();
/// assert!(registry.get_by_name("pos").is_some());
/// assert!(registry.get_by_name("unique").is_some());
/// assert!(!registry.check_well_formed().has_errors());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    defs: Vec<QualifierDef>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry preloaded with the paper's qualifier library
    /// (`pos`, `neg`, `nonzero`, `nonnull`, `untainted` with the
    /// constants rule, `tainted`, `unique`, `unaliased`).
    pub fn builtins() -> Registry {
        let mut r = Registry::new();
        for (name, src) in builtins::ALL {
            r.add_source(src)
                .unwrap_or_else(|e| panic!("builtin {name} failed to parse: {e}"));
        }
        r
    }

    /// Adds a parsed definition.
    ///
    /// # Errors
    ///
    /// Returns an error if a qualifier with the same name already exists.
    pub fn add(&mut self, def: QualifierDef) -> Result<(), SpecError> {
        if self.get(def.name).is_some() {
            return Err(SpecError {
                message: format!("duplicate qualifier definition `{}`", def.name),
                span: def.span,
            });
        }
        self.defs.push(def);
        Ok(())
    }

    /// Parses definitions from source and adds them all.
    ///
    /// # Errors
    ///
    /// Returns the first parse error or duplicate-name error.
    pub fn add_source(&mut self, src: &str) -> Result<(), SpecError> {
        for def in parse_qualifiers(src)? {
            self.add(def)?;
        }
        Ok(())
    }

    /// Error-resilient [`Registry::add_source`]: parses with
    /// [`crate::parse::parse_qualifiers_resilient`], registers every
    /// definition that survived, and returns *all* diagnostics — syntax
    /// errors and duplicate names alike. An empty vector means every
    /// definition in `src` was added.
    pub fn add_source_resilient(&mut self, src: &str) -> Vec<SpecError> {
        let (defs, mut errors) = crate::parse::parse_qualifiers_resilient(src);
        for def in defs {
            if let Err(e) = self.add(def) {
                errors.push(e);
            }
        }
        errors
    }

    /// Looks up a definition by symbol.
    pub fn get(&self, name: Symbol) -> Option<&QualifierDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Looks up a definition by string name.
    pub fn get_by_name(&self, name: &str) -> Option<&QualifierDef> {
        self.get(Symbol::intern(name))
    }

    /// All registered qualifier names, as `&'static str` suitable for
    /// passing to [`stq_cir::parse::parse_program`].
    pub fn names(&self) -> Vec<&'static str> {
        self.defs.iter().map(|d| d.name.as_str()).collect()
    }

    /// All registered name symbols.
    pub fn name_set(&self) -> BTreeSet<Symbol> {
        self.defs.iter().map(|d| d.name).collect()
    }

    /// Iterates over the definitions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &QualifierDef> {
        self.defs.iter()
    }

    /// Number of registered qualifiers.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Runs well-formedness checking over every definition, resolving
    /// cross-qualifier references against the whole registry.
    pub fn check_well_formed(&self) -> Diagnostics {
        let known = self.name_set();
        let mut all = Diagnostics::new();
        for def in &self.defs {
            all.extend_from(check_def(def, &known));
        }
        all
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a QualifierDef;
    type IntoIter = std::slice::Iter<'a, QualifierDef>;

    fn into_iter(self) -> Self::IntoIter {
        self.defs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_load_and_are_well_formed() {
        let r = Registry::builtins();
        assert_eq!(r.len(), 8);
        let diags = r.check_well_formed();
        assert!(!diags.has_errors(), "{diags}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::new();
        r.add_source("value qualifier q(int Expr E)").unwrap();
        let e = r.add_source("value qualifier q(int Expr E)").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn names_round_trip_to_parser() {
        let r = Registry::builtins();
        let names = r.names();
        assert!(names.contains(&"pos"));
        // The names must be usable to parse annotated programs.
        let p = stq_cir::parse::parse_program("int pos x = 3;", &names).unwrap();
        assert!(p.globals[0].ty.has_qual(Symbol::intern("pos")));
    }

    #[test]
    fn mutual_recursion_is_well_formed() {
        // pos and neg refer to each other; both are registered, so the
        // cross-references resolve.
        let r = Registry::builtins();
        let pos = r.get_by_name("pos").unwrap();
        assert!(pos.referenced_qualifiers().contains(&Symbol::intern("neg")));
    }

    #[test]
    fn dangling_reference_is_caught_at_registry_level() {
        let mut r = Registry::new();
        r.add_source(
            "value qualifier q(int Expr E)
                case E of
                    decl int Expr E1: E1, where missing(E1)",
        )
        .unwrap();
        assert!(r.check_well_formed().has_errors());
    }

    #[test]
    fn empty_registry() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert!(r.names().is_empty());
        assert!(!r.check_well_formed().has_errors());
    }
}
