//! Parser for the qualifier-definition language.
//!
//! The concrete syntax follows the paper's figures verbatim, e.g. Figure 1:
//!
//! ```text
//! value qualifier pos(int Expr E)
//!     case E of
//!         decl int Const C:
//!             C, where C > 0
//!       | decl int Expr E1, E2:
//!             E1 * E2, where pos(E1) && pos(E2)
//!       | decl int Expr E1:
//!             -E1, where neg(E1)
//!     invariant value(E) > 0
//! ```

use crate::ast::*;
use std::fmt;
use stq_cir::ast::{BinOp, UnOp};
use stq_cir::lex::{lex, Tok, Token};
use stq_util::{Span, Symbol};

/// A parse failure in a qualifier definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qualifier definition error at {}: {}",
            self.span, self.message
        )
    }
}

impl std::error::Error for SpecError {}

type SResult<T> = Result<T, SpecError>;

/// Parses a file of qualifier definitions.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// use stq_qualspec::parse::parse_qualifiers;
///
/// let defs = parse_qualifiers(
///     "value qualifier pos(int Expr E)
///          case E of
///              decl int Const C: C, where C > 0
///          invariant value(E) > 0",
/// ).unwrap();
/// assert_eq!(defs.len(), 1);
/// assert_eq!(defs[0].name.as_str(), "pos");
/// assert_eq!(defs[0].cases.len(), 1);
/// ```
pub fn parse_qualifiers(src: &str) -> SResult<Vec<QualifierDef>> {
    let toks = lex(src).map_err(|e| SpecError {
        message: e.message,
        span: e.span,
    })?;
    let mut p = P { toks, pos: 0 };
    let mut out = Vec::new();
    while p.peek() != &Tok::Eof {
        out.push(p.qualifier()?);
    }
    Ok(out)
}

/// Error-resilient variant of [`parse_qualifiers`]: instead of stopping
/// at the first syntax error, records it, resynchronizes at the next
/// clause keyword (`case`, `restrict`, `assign`, `disallow`, `ondecl`,
/// `invariant`) or `value`/`ref qualifier` header, and keeps parsing.
/// Returns every definition that survived — possibly with the broken
/// section dropped — alongside every diagnostic, so one typo in a
/// qualifier file no longer hides the rest of the file.
///
/// An empty error vector means exactly the definitions
/// [`parse_qualifiers`] would have produced.
pub fn parse_qualifiers_resilient(src: &str) -> (Vec<QualifierDef>, Vec<SpecError>) {
    let toks = match lex(src) {
        Ok(toks) => toks,
        // Lexing is not recoverable (there is no token stream to sync
        // on); report the one error.
        Err(e) => {
            return (
                Vec::new(),
                vec![SpecError {
                    message: e.message,
                    span: e.span,
                }],
            );
        }
    };
    let mut p = P { toks, pos: 0 };
    let mut defs = Vec::new();
    let mut errors = Vec::new();
    while p.peek() != &Tok::Eof {
        if let Some(def) = p.qualifier_resilient(&mut errors) {
            defs.push(def);
        }
    }
    (defs, errors)
}

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> SResult<T> {
        Err(SpecError {
            message: message.into(),
            span: self.span(),
        })
    }

    fn expect(&mut self, tok: &Tok) -> SResult<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> SResult<Symbol> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.as_str() == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{}`", self.peek()))
        }
    }

    // ----- top level -----

    fn qualifier(&mut self) -> SResult<QualifierDef> {
        let start = self.span();
        let mut def = self.qualifier_header(start)?;
        while self.qualifier_section(&mut def)? {}
        def.span = start.to(self.prev_span());
        Ok(def)
    }

    /// `value|ref qualifier name(subject)` — everything before the
    /// clause sections.
    fn qualifier_header(&mut self, start: Span) -> SResult<QualifierDef> {
        let kind = if self.eat_kw("value") {
            QualKind::Value
        } else if self.eat_kw("ref") {
            QualKind::Ref
        } else {
            return self.err("expected `value` or `ref`");
        };
        self.expect_kw("qualifier")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let subject = self.var_decl_single()?;
        self.expect(&Tok::RParen)?;

        Ok(QualifierDef {
            name,
            kind,
            subject,
            cases: Vec::new(),
            restricts: Vec::new(),
            assigns: Vec::new(),
            disallow: Disallow::default(),
            ondecl: false,
            invariant: None,
            span: start,
        })
    }

    /// Parses one clause section into `def`. `Ok(false)` means the next
    /// token starts no section (the definition is complete).
    fn qualifier_section(&mut self, def: &mut QualifierDef) -> SResult<bool> {
        {
            if self.eat_kw("case") {
                let scrutinee = self.ident()?;
                if scrutinee != def.subject.name {
                    return self.err(format!(
                        "case block must scrutinize the subject `{}`",
                        def.subject.name
                    ));
                }
                self.expect_kw("of")?;
                def.cases.extend(self.clause_list()?);
            } else if self.eat_kw("restrict") {
                def.restricts.extend(self.clause_list()?);
            } else if self.eat_kw("assign") {
                let target = self.ident()?;
                if target != def.subject.name {
                    return self.err(format!(
                        "assign block must target the subject `{}`",
                        def.subject.name
                    ));
                }
                loop {
                    def.assigns.push(self.assign_rhs()?);
                    if self.peek() == &Tok::Pipe {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.eat_kw("disallow") {
                loop {
                    if self.peek() == &Tok::Amp {
                        self.bump();
                        let x = self.ident()?;
                        if x != def.subject.name {
                            return self.err("disallow must mention the subject");
                        }
                        def.disallow.addr_of = true;
                    } else {
                        let x = self.ident()?;
                        if x != def.subject.name {
                            return self.err("disallow must mention the subject");
                        }
                        def.disallow.ref_use = true;
                    }
                    if self.peek() == &Tok::Pipe {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.at_kw("ondecl") {
                self.bump();
                def.ondecl = true;
            } else if self.eat_kw("invariant") {
                def.invariant = Some(self.inv_pred()?);
            } else {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ----- error recovery -----

    /// True at a token sequence that can begin a qualifier definition.
    /// `value`/`ref` alone is not enough — `value` also occurs inside
    /// invariants (`value(E)`) — so require the following `qualifier`.
    fn at_def_start(&self) -> bool {
        (self.at_kw("value") || self.at_kw("ref"))
            && matches!(
                self.toks.get(self.pos + 1).map(|t| &t.tok),
                Some(Tok::Ident(s)) if s.as_str() == "qualifier"
            )
    }

    /// True at a keyword that begins a clause section.
    fn at_section_start(&self) -> bool {
        ["case", "restrict", "assign", "disallow", "ondecl", "invariant"]
            .iter()
            .any(|k| self.at_kw(k))
    }

    /// Advances one token if any remain before the `Eof` sentinel (unlike
    /// [`P::bump`], which parks on the last token, this is the progress
    /// guarantee for the recovery loops).
    fn force_bump(&mut self) {
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
    }

    /// Skips past the current token to the next definition start or Eof.
    fn sync_to_def(&mut self) {
        self.force_bump();
        while self.peek() != &Tok::Eof && !self.at_def_start() {
            self.force_bump();
        }
    }

    /// Skips past the current token to the next section keyword,
    /// definition start, or Eof.
    fn sync_to_section(&mut self) {
        self.force_bump();
        while self.peek() != &Tok::Eof && !self.at_section_start() && !self.at_def_start() {
            self.force_bump();
        }
    }

    /// Parses one definition, recording errors in `errors` and
    /// resynchronizing instead of failing. Returns `None` when the
    /// header itself was unusable; otherwise the (possibly partial)
    /// definition.
    fn qualifier_resilient(&mut self, errors: &mut Vec<SpecError>) -> Option<QualifierDef> {
        let start = self.span();
        let mut def = match self.qualifier_header(start) {
            Ok(def) => def,
            Err(e) => {
                errors.push(e);
                self.sync_to_def();
                return None;
            }
        };
        loop {
            match self.qualifier_section(&mut def) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    errors.push(e);
                    // Drop the broken section, keep what already parsed,
                    // and continue at the next section of this definition
                    // (or hand back to the top level at a new one).
                    self.sync_to_section();
                    if !self.at_section_start() {
                        break;
                    }
                }
            }
        }
        def.span = start.to(self.prev_span());
        Some(def)
    }

    // ----- declarations -----

    fn type_pat(&mut self) -> SResult<TypePat> {
        let base = match self.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "int" => {
                    self.bump();
                    TypePat::Int
                }
                "char" => {
                    self.bump();
                    TypePat::Char
                }
                _ => {
                    self.bump();
                    TypePat::Any(s)
                }
            },
            other => return self.err(format!("expected type pattern, found `{other}`")),
        };
        let mut ty = base;
        while self.peek() == &Tok::Star {
            self.bump();
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn classifier(&mut self) -> SResult<Classifier> {
        let name = self.ident()?;
        match name.as_str() {
            "Expr" => Ok(Classifier::Expr),
            "Const" => Ok(Classifier::Const),
            "LValue" => Ok(Classifier::LValue),
            "Var" => Ok(Classifier::Var),
            other => self.err(format!(
                "unknown classifier `{other}` (expected Expr, Const, LValue, or Var)"
            )),
        }
    }

    /// A single `type Classifier name` declaration (the subject).
    fn var_decl_single(&mut self) -> SResult<VarDecl> {
        let ty = self.type_pat()?;
        let classifier = self.classifier()?;
        let name = self.ident()?;
        Ok(VarDecl {
            name,
            ty,
            classifier,
        })
    }

    /// A `decl type Classifier n1, n2, …` declaration group.
    fn decl_group(&mut self) -> SResult<Vec<VarDecl>> {
        let ty = self.type_pat()?;
        let classifier = self.classifier()?;
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            out.push(VarDecl {
                name,
                ty: ty.clone(),
                classifier,
            });
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    // ----- clauses -----

    fn clause_list(&mut self) -> SResult<Vec<Clause>> {
        let mut out = vec![self.clause()?];
        while self.peek() == &Tok::Pipe {
            self.bump();
            out.push(self.clause()?);
        }
        Ok(out)
    }

    fn clause(&mut self) -> SResult<Clause> {
        let start = self.span();
        let mut decls = Vec::new();
        if self.eat_kw("decl") {
            decls = self.decl_group()?;
            self.expect(&Tok::Colon)?;
        }
        let pattern = self.pattern()?;
        let guard = if self.peek() == &Tok::Comma {
            self.bump();
            self.expect_kw("where")?;
            self.pred()?
        } else {
            Pred::True
        };
        Ok(Clause {
            decls,
            pattern,
            guard,
            span: start.to(self.prev_span()),
        })
    }

    fn pattern(&mut self) -> SResult<Pattern> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Pattern::Unop(UnOp::Neg, self.ident()?))
            }
            Tok::Not => {
                self.bump();
                Ok(Pattern::Unop(UnOp::Not, self.ident()?))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Pattern::Unop(UnOp::BitNot, self.ident()?))
            }
            Tok::Star => {
                self.bump();
                Ok(Pattern::Deref(self.ident()?))
            }
            Tok::Amp => {
                self.bump();
                Ok(Pattern::AddrOf(self.ident()?))
            }
            Tok::Ident(s) if s.as_str() == "new" => {
                self.bump();
                Ok(Pattern::New)
            }
            Tok::Ident(x) => {
                self.bump();
                let op = match self.peek() {
                    Tok::Plus => Some(BinOp::Add),
                    Tok::Minus => Some(BinOp::Sub),
                    Tok::Star => Some(BinOp::Mul),
                    Tok::Slash => Some(BinOp::Div),
                    Tok::Percent => Some(BinOp::Mod),
                    Tok::EqEq => Some(BinOp::Eq),
                    Tok::Ne => Some(BinOp::Ne),
                    Tok::Lt => Some(BinOp::Lt),
                    Tok::Le => Some(BinOp::Le),
                    Tok::Gt => Some(BinOp::Gt),
                    Tok::Ge => Some(BinOp::Ge),
                    Tok::AndAnd => Some(BinOp::And),
                    Tok::OrOr => Some(BinOp::Or),
                    _ => None,
                };
                match op {
                    None => Ok(Pattern::Var(x)),
                    Some(op) => {
                        self.bump();
                        let y = self.ident()?;
                        Ok(Pattern::Binop(op, x, y))
                    }
                }
            }
            other => self.err(format!("expected pattern, found `{other}`")),
        }
    }

    // ----- clause predicates -----

    fn pred(&mut self) -> SResult<Pred> {
        let mut lhs = self.pred_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.pred_and()?;
            lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_and(&mut self) -> SResult<Pred> {
        let mut lhs = self.pred_atom()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.pred_atom()?;
            lhs = Pred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_atom(&mut self) -> SResult<Pred> {
        if self.peek() == &Tok::LParen {
            self.bump();
            let inner = self.pred()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        // Qualifier check: ident(ident).
        if let Tok::Ident(q) = self.peek().clone() {
            if self.toks[self.pos + 1].tok == Tok::LParen && q.as_str() != "value" {
                self.bump();
                self.expect(&Tok::LParen)?;
                let x = self.ident()?;
                self.expect(&Tok::RParen)?;
                return Ok(Pred::QualCheck(q, x));
            }
        }
        let a = self.pterm()?;
        let op = self.cmp_op()?;
        let b = self.pterm()?;
        Ok(Pred::Cmp(op, a, b))
    }

    fn pterm(&mut self) -> SResult<PTerm> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(PTerm::Int(v))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(v) => Ok(PTerm::Int(-v)),
                    other => self.err(format!("expected integer after `-`, found `{other}`")),
                }
            }
            Tok::Ident(s) if s.as_str() == "NULL" => {
                self.bump();
                Ok(PTerm::Null)
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(PTerm::Var(s))
            }
            other => self.err(format!("expected predicate term, found `{other}`")),
        }
    }

    fn cmp_op(&mut self) -> SResult<CmpOp> {
        let op = match self.peek() {
            Tok::EqEq | Tok::Assign => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected comparison operator, found `{other}`")),
        };
        self.bump();
        Ok(op)
    }

    // ----- assign -----

    fn assign_rhs(&mut self) -> SResult<AssignRhs> {
        match self.peek().clone() {
            Tok::Ident(s) if s.as_str() == "NULL" => {
                self.bump();
                Ok(AssignRhs::Null)
            }
            Tok::Ident(s) if s.as_str() == "new" => {
                self.bump();
                Ok(AssignRhs::New)
            }
            Tok::Ident(s) if s.as_str() == "const" => {
                self.bump();
                Ok(AssignRhs::Const)
            }
            other => self.err(format!(
                "expected assign form (NULL, new, or const), found `{other}`"
            )),
        }
    }

    // ----- invariants -----

    fn inv_pred(&mut self) -> SResult<InvPred> {
        let lhs = self.inv_or()?;
        if self.peek() == &Tok::FatArrow {
            self.bump();
            let rhs = self.inv_pred()?; // right associative
            return Ok(InvPred::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn inv_or(&mut self) -> SResult<InvPred> {
        let mut lhs = self.inv_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.inv_and()?;
            lhs = InvPred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn inv_and(&mut self) -> SResult<InvPred> {
        let mut lhs = self.inv_atom()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.inv_atom()?;
            lhs = InvPred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn inv_atom(&mut self) -> SResult<InvPred> {
        if self.peek() == &Tok::Not {
            self.bump();
            let inner = self.inv_atom()?;
            return Ok(InvPred::Not(Box::new(inner)));
        }
        if self.peek() == &Tok::LParen {
            self.bump();
            let inner = self.inv_pred()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        if self.at_kw("forall") {
            self.bump();
            let ty = self.type_pat()?;
            let var = self.ident()?;
            self.expect(&Tok::Colon)?;
            let body = self.inv_pred()?;
            return Ok(InvPred::Forall(var, ty, Box::new(body)));
        }
        if self.at_kw("isHeapLoc") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let t = self.inv_term()?;
            self.expect(&Tok::RParen)?;
            return Ok(InvPred::IsHeapLoc(t));
        }
        let a = self.inv_term()?;
        let op = self.cmp_op()?;
        let b = self.inv_term()?;
        Ok(InvPred::Cmp(op, a, b))
    }

    fn inv_term(&mut self) -> SResult<InvTerm> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(InvTerm::Int(v))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(v) => Ok(InvTerm::Int(-v)),
                    other => self.err(format!("expected integer after `-`, found `{other}`")),
                }
            }
            Tok::Star => {
                self.bump();
                Ok(InvTerm::DerefVar(self.ident()?))
            }
            Tok::Ident(s) if s.as_str() == "NULL" => {
                self.bump();
                Ok(InvTerm::Null)
            }
            Tok::Ident(s) if s.as_str() == "value" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let x = self.ident()?;
                self.expect(&Tok::RParen)?;
                Ok(InvTerm::Value(x))
            }
            Tok::Ident(s) if s.as_str() == "location" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let x = self.ident()?;
                self.expect(&Tok::RParen)?;
                Ok(InvTerm::Location(x))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(InvTerm::Var(s))
            }
            other => self.err(format!("expected invariant term, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> QualifierDef {
        let defs = parse_qualifiers(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"));
        assert_eq!(defs.len(), 1, "expected one definition");
        defs.into_iter().next().expect("len checked")
    }

    #[test]
    fn figure1_pos() {
        let def = one("value qualifier pos(int Expr E)
                case E of
                    decl int Const C:
                        C, where C > 0
                  | decl int Expr E1, E2:
                        E1 * E2, where pos(E1) && pos(E2)
                  | decl int Expr E1:
                        -E1, where neg(E1)
                invariant value(E) > 0");
        assert_eq!(def.name.as_str(), "pos");
        assert_eq!(def.kind, QualKind::Value);
        assert_eq!(def.subject.classifier, Classifier::Expr);
        assert_eq!(def.subject.ty, TypePat::Int);
        assert_eq!(def.cases.len(), 3);
        assert_eq!(def.cases[1].decls.len(), 2);
        assert!(matches!(
            def.cases[1].pattern,
            Pattern::Binop(BinOp::Mul, _, _)
        ));
        assert!(matches!(def.cases[2].pattern, Pattern::Unop(UnOp::Neg, _)));
        assert_eq!(
            def.invariant,
            Some(InvPred::Cmp(
                CmpOp::Gt,
                InvTerm::Value(Symbol::intern("E")),
                InvTerm::Int(0)
            ))
        );
        assert!(def.referenced_qualifiers().contains(&Symbol::intern("neg")));
    }

    #[test]
    fn figure3_nonzero_with_restrict() {
        let def = one("value qualifier nonzero(int Expr E)
                case E of
                    decl int Const C:
                        C, where C != 0
                  | decl int Expr E1:
                        E1, where pos(E1)
                  | decl int Expr E1, E2:
                        E1 * E2, where nonzero(E1) && nonzero(E2)
                restrict decl int Expr E1, E2:
                    E1 / E2, where nonzero(E2)
                invariant value(E) != 0");
        assert_eq!(def.cases.len(), 3);
        assert_eq!(def.restricts.len(), 1);
        assert!(matches!(
            def.restricts[0].pattern,
            Pattern::Binop(BinOp::Div, _, _)
        ));
    }

    #[test]
    fn figure4_taintedness() {
        let defs = parse_qualifiers(
            "value qualifier untainted(T Expr E)
             value qualifier tainted(T Expr E)
                case E of
                    decl T Expr E1:
                        E1",
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
        assert!(defs[0].cases.is_empty());
        assert!(defs[0].invariant.is_none());
        assert_eq!(defs[1].cases.len(), 1);
        assert_eq!(defs[1].cases[0].guard, Pred::True);
        assert_eq!(defs[0].subject.ty, TypePat::Any(Symbol::intern("T")));
    }

    #[test]
    fn figure5_unique() {
        let def = one("ref qualifier unique(T* LValue L)
                assign L NULL | new
                disallow L
                invariant value(L) == NULL ||
                    (isHeapLoc(value(L)) &&
                     forall T** P: *P == value(L) => P == location(L))");
        assert_eq!(def.kind, QualKind::Ref);
        assert_eq!(def.subject.classifier, Classifier::LValue);
        assert_eq!(def.subject.ty, TypePat::Any(Symbol::intern("T")).ptr_to());
        assert_eq!(def.assigns, vec![AssignRhs::Null, AssignRhs::New]);
        assert!(def.disallow.ref_use);
        assert!(!def.disallow.addr_of);
        match def.invariant.unwrap() {
            InvPred::Or(lhs, rhs) => {
                assert!(matches!(*lhs, InvPred::Cmp(CmpOp::Eq, _, InvTerm::Null)));
                match *rhs {
                    InvPred::And(heap, forall) => {
                        assert!(matches!(*heap, InvPred::IsHeapLoc(_)));
                        match *forall {
                            InvPred::Forall(p, ty, body) => {
                                assert_eq!(p.as_str(), "P");
                                assert_eq!(ty, TypePat::Any(Symbol::intern("T")).ptr_to().ptr_to());
                                assert!(matches!(*body, InvPred::Implies(_, _)));
                            }
                            other => panic!("expected forall, got {other:?}"),
                        }
                    }
                    other => panic!("expected and, got {other:?}"),
                }
            }
            other => panic!("expected or, got {other:?}"),
        }
    }

    #[test]
    fn figure5_single_equals_also_parses() {
        // The paper's figure uses single `=` inside the invariant.
        let def = one("ref qualifier unique(T* LValue L)
                assign L NULL | new
                disallow L
                invariant value(L) = NULL ||
                    (isHeapLoc(value(L)) &&
                     forall T** P: *P = value(L) => P = location(L))");
        assert!(def.invariant.is_some());
    }

    #[test]
    fn figure7_unaliased() {
        let def = one("ref qualifier unaliased(T Var X)
                ondecl
                disallow &X
                invariant forall T** P: *P != location(X)");
        assert!(def.ondecl);
        assert!(def.disallow.addr_of);
        assert!(!def.disallow.ref_use);
        assert_eq!(def.subject.classifier, Classifier::Var);
    }

    #[test]
    fn figure12_nonnull() {
        let def = one("value qualifier nonnull(T* Expr E)
                case E of
                    decl T LValue L:
                        &L
                restrict decl T* Expr E:
                    *E, where nonnull(E)
                invariant value(E) != NULL");
        assert!(matches!(def.cases[0].pattern, Pattern::AddrOf(_)));
        assert!(matches!(def.restricts[0].pattern, Pattern::Deref(_)));
        assert_eq!(def.cases[0].decls[0].classifier, Classifier::LValue);
    }

    #[test]
    fn untainted_constants_extension() {
        // §2.1.4: "all constants should be trusted".
        let def = one("value qualifier untainted(T Expr E)
                case E of
                    decl T Const C:
                        C");
        assert_eq!(def.cases.len(), 1);
        assert!(matches!(def.cases[0].pattern, Pattern::Var(_)));
        assert_eq!(def.cases[0].decls[0].classifier, Classifier::Const);
    }

    #[test]
    fn case_must_scrutinize_subject() {
        let r = parse_qualifiers(
            "value qualifier q(int Expr E)
                case F of
                    decl int Const C: C",
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_classifier_errors() {
        let r = parse_qualifiers("value qualifier q(int Thing E)");
        assert!(r.is_err());
        assert!(r.unwrap_err().message.contains("classifier"));
    }

    #[test]
    fn disallow_must_mention_subject() {
        let r = parse_qualifiers(
            "ref qualifier q(T* LValue L)
                disallow M",
        );
        assert!(r.is_err());
    }

    #[test]
    fn disjunctive_guard() {
        let def = one("value qualifier q(int Expr E)
                case E of
                    decl int Expr E1, E2:
                        E1 + E2, where (pos(E1) && pos(E2)) || (neg(E1) && neg(E2))");
        assert!(matches!(def.cases[0].guard, Pred::Or(_, _)));
    }

    #[test]
    fn spans_cover_definitions() {
        let src = "value qualifier pos(int Expr E)
            invariant value(E) > 0";
        let def = one(src);
        assert_eq!(def.span.start, 0);
        assert!(def.span.end as usize >= src.len() - 2);
    }

    #[test]
    fn resilient_parse_of_clean_source_matches_strict() {
        let src = "value qualifier pos(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                invariant value(E) > 0
            ref qualifier u(T* LValue L)
                assign L NULL | new
                invariant value(L) == NULL";
        let strict = parse_qualifiers(src).unwrap();
        let (defs, errors) = parse_qualifiers_resilient(src);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(defs.len(), strict.len());
        assert_eq!(defs[0].name, strict[0].name);
        assert_eq!(defs[1].assigns, strict[1].assigns);
    }

    #[test]
    fn resilient_parse_recovers_at_the_next_definition() {
        // The first definition's header is broken; the second must
        // still parse.
        let src = "value qualifier (int Expr E)
                invariant value(E) > 0
            value qualifier good(int Expr E)
                invariant value(E) > 0";
        assert!(parse_qualifiers(src).is_err());
        let (defs, errors) = parse_qualifiers_resilient(src);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name.as_str(), "good");
    }

    #[test]
    fn resilient_parse_recovers_at_the_next_section() {
        // A broken case clause must not lose the invariant section (or
        // the following definition).
        let src = "value qualifier broken(int Expr E)
                case E of
                    decl int Const C: ;;, where C > 0
                invariant value(E) > 0
            value qualifier fine(int Expr E)
                invariant value(E) > 1";
        let (defs, errors) = parse_qualifiers_resilient(src);
        assert!(!errors.is_empty());
        assert_eq!(defs.len(), 2, "{defs:?}");
        assert_eq!(defs[0].name.as_str(), "broken");
        assert!(defs[0].invariant.is_some(), "later section kept");
        assert_eq!(defs[1].name.as_str(), "fine");
    }

    #[test]
    fn resilient_parse_collects_multiple_diagnostics() {
        let src = "value qualifier a(int Expr E)
                invariant value(E) >
            value qualifier b(int Expr E)
                case E of
                invariant value(E) > 0
            value qualifier c(int Expr E)
                invariant value(E) > 0";
        let (defs, errors) = parse_qualifiers_resilient(src);
        assert!(errors.len() >= 2, "{errors:?}");
        assert!(defs.iter().any(|d| d.name.as_str() == "c"));
    }

    #[test]
    fn resilient_parse_of_garbage_terminates_with_diagnostics() {
        let (defs, errors) = parse_qualifiers_resilient("((((( ,,, |||");
        assert!(defs.is_empty());
        assert!(!errors.is_empty());
        let (defs, errors) = parse_qualifiers_resilient("");
        assert!(defs.is_empty() && errors.is_empty());
    }
}
