//! Rendering qualifier definitions back to definition-language source.
//!
//! Useful for tooling (`stqc` listings, documentation generation) and as
//! a round-trip test of the parser: `parse ∘ print = id`.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a definition as definition-language source that re-parses to
/// an equal AST.
pub fn def_to_source(def: &QualifierDef) -> String {
    let mut out = String::new();
    let kind = match def.kind {
        QualKind::Value => "value",
        QualKind::Ref => "ref",
    };
    let _ = writeln!(
        out,
        "{kind} qualifier {}({} {} {})",
        def.name, def.subject.ty, def.subject.classifier, def.subject.name
    );
    if !def.cases.is_empty() {
        let _ = writeln!(out, "    case {} of", def.subject.name);
        write_clauses(&mut out, &def.cases);
    }
    if !def.restricts.is_empty() {
        let _ = writeln!(out, "    restrict");
        write_clauses(&mut out, &def.restricts);
    }
    if !def.assigns.is_empty() {
        let forms: Vec<String> = def.assigns.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "    assign {} {}", def.subject.name, forms.join(" | "));
    }
    let mut disallowed = Vec::new();
    if def.disallow.ref_use {
        disallowed.push(def.subject.name.to_string());
    }
    if def.disallow.addr_of {
        disallowed.push(format!("&{}", def.subject.name));
    }
    if !disallowed.is_empty() {
        let _ = writeln!(out, "    disallow {}", disallowed.join(" | "));
    }
    if def.ondecl {
        let _ = writeln!(out, "    ondecl");
    }
    if let Some(inv) = &def.invariant {
        let _ = writeln!(out, "    invariant {inv}");
    }
    out
}

fn write_clauses(out: &mut String, clauses: &[Clause]) {
    for (i, clause) in clauses.iter().enumerate() {
        let lead = if i == 0 { "       " } else { "      |" };
        let mut line = String::new();
        if !clause.decls.is_empty() {
            // Group consecutive declarations sharing type and classifier.
            line.push_str("decl ");
            let mut first = true;
            let mut idx = 0;
            while idx < clause.decls.len() {
                let d = &clause.decls[idx];
                if !first {
                    line.push_str("; decl ");
                }
                first = false;
                let _ = write!(line, "{} {} {}", d.ty, d.classifier, d.name);
                let mut j = idx + 1;
                while j < clause.decls.len()
                    && clause.decls[j].ty == d.ty
                    && clause.decls[j].classifier == d.classifier
                {
                    let _ = write!(line, ", {}", clause.decls[j].name);
                    j += 1;
                }
                idx = j;
            }
            line.push_str(": ");
        }
        let _ = write!(line, "{}", clause.pattern);
        if clause.guard != Pred::True {
            let _ = write!(line, ", where {}", clause.guard);
        }
        let _ = writeln!(out, "{lead} {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_qualifiers;
    use crate::registry::Registry;

    /// Structural equality modulo spans.
    fn strip_spans(mut def: QualifierDef) -> QualifierDef {
        def.span = stq_util::Span::DUMMY;
        for c in def.cases.iter_mut().chain(def.restricts.iter_mut()) {
            c.span = stq_util::Span::DUMMY;
        }
        def
    }

    #[test]
    fn every_builtin_round_trips() {
        let registry = Registry::builtins();
        for def in registry.iter() {
            let printed = def_to_source(def);
            let reparsed = parse_qualifiers(&printed)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", def.name));
            assert_eq!(reparsed.len(), 1, "{printed}");
            assert_eq!(
                strip_spans(reparsed.into_iter().next().expect("one def")),
                strip_spans(def.clone()),
                "round trip changed {}:\n{printed}",
                def.name
            );
        }
    }

    #[test]
    fn mixed_decl_groups_round_trip() {
        let src = "value qualifier mix(int Expr E)
                       case E of
                           decl int Const C; decl int Expr E1: E1 * E1, where C > 0 && mix(E1)";
        let parsed = parse_qualifiers(src);
        // The surface grammar does not support `;`-separated decl groups;
        // the printer only emits them for hand-built ASTs with mixed
        // classifiers, which the builtins never have. Verify the error is
        // clean rather than a panic.
        assert!(parsed.is_err());
    }

    #[test]
    fn printed_source_is_registry_loadable() {
        let registry = Registry::builtins();
        let mut rebuilt = Registry::new();
        for def in registry.iter() {
            rebuilt
                .add_source(&def_to_source(def))
                .unwrap_or_else(|e| panic!("{}: {e}", def.name));
        }
        assert_eq!(rebuilt.len(), registry.len());
        assert!(!rebuilt.check_well_formed().has_errors());
    }
}
