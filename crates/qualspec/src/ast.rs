//! Abstract syntax for the qualifier-definition language (paper §2).
//!
//! A qualifier definition declares a new *value* or *reference* qualifier,
//! its subject (the kind of program fragment it applies to), its type
//! rules (`case` / `restrict` for value qualifiers, `assign` / `disallow`
//! / `ondecl` for reference qualifiers), and optionally the run-time
//! `invariant` the rules are meant to guarantee.

use std::collections::BTreeSet;
use std::fmt;
use stq_cir::ast::{BinOp, UnOp};
use stq_util::{Span, Symbol};

/// Value qualifiers pertain to an expression's value; reference qualifiers
/// (additionally) pertain to an l-value's address (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QualKind {
    /// `value qualifier`.
    Value,
    /// `ref qualifier`.
    Ref,
}

/// The classifier of a pattern variable: which program fragments it may
/// match (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Classifier {
    /// Side-effect-free expressions.
    Expr,
    /// Constants.
    Const,
    /// L-values.
    LValue,
    /// Variables.
    Var,
}

impl fmt::Display for Classifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Classifier::Expr => "Expr",
            Classifier::Const => "Const",
            Classifier::LValue => "LValue",
            Classifier::Var => "Var",
        })
    }
}

/// A type pattern in a variable declaration: `int`, `T`, `T*`, `T**`, …
/// Type variables (like `T`) match any type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TypePat {
    /// Concrete `int`.
    Int,
    /// Concrete `char`.
    Char,
    /// A type variable, matching any type.
    Any(Symbol),
    /// Pointer to a matched type.
    Ptr(Box<TypePat>),
}

impl TypePat {
    /// Pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> TypePat {
        TypePat::Ptr(Box::new(self))
    }
}

impl fmt::Display for TypePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypePat::Int => f.write_str("int"),
            TypePat::Char => f.write_str("char"),
            TypePat::Any(s) => write!(f, "{s}"),
            TypePat::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// A declared pattern variable: type pattern, classifier, and name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarDecl {
    /// The variable name.
    pub name: Symbol,
    /// What types of fragments it may match.
    pub ty: TypePat,
    /// What kinds of fragments it may match.
    pub classifier: Classifier,
}

/// An expression pattern (paper grammar
/// `P ::= X | *X | &X | new | uop X | X bop X`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// A bare pattern variable `X`.
    Var(Symbol),
    /// `*X`.
    Deref(Symbol),
    /// `&X` — `X` must have classifier `LValue` or `Var`.
    AddrOf(Symbol),
    /// `new` — matches memory allocation (`malloc`).
    New,
    /// `uop X`.
    Unop(UnOp, Symbol),
    /// `X bop Y`.
    Binop(BinOp, Symbol, Symbol),
}

impl Pattern {
    /// The pattern variables mentioned.
    pub fn vars(&self) -> Vec<Symbol> {
        match self {
            Pattern::New => Vec::new(),
            Pattern::Var(x) | Pattern::Deref(x) | Pattern::AddrOf(x) | Pattern::Unop(_, x) => {
                vec![*x]
            }
            Pattern::Binop(_, x, y) => vec![*x, *y],
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Var(x) => write!(f, "{x}"),
            Pattern::Deref(x) => write!(f, "*{x}"),
            Pattern::AddrOf(x) => write!(f, "&{x}"),
            Pattern::New => f.write_str("new"),
            Pattern::Unop(op, x) => write!(f, "{op}{x}"),
            Pattern::Binop(op, x, y) => write!(f, "{x} {op} {y}"),
        }
    }
}

/// A term in a clause predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PTerm {
    /// A pattern variable.
    Var(Symbol),
    /// Integer literal.
    Int(i64),
    /// The `NULL` constant.
    Null,
}

impl fmt::Display for PTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PTerm::Var(x) => write!(f, "{x}"),
            PTerm::Int(v) => write!(f, "{v}"),
            PTerm::Null => f.write_str("NULL"),
        }
    }
}

/// Comparison operators usable in predicates and invariants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// The predicate after `where` in a `case`/`restrict` clause.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pred {
    /// Always true (clause with no `where`).
    True,
    /// Comparison between constants / `Const`-classified variables.
    Cmp(CmpOp, PTerm, PTerm),
    /// Qualifier check `q(X)` on a pattern variable.
    QualCheck(Symbol, Symbol),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// All qualifier names checked anywhere in the predicate.
    pub fn qual_checks(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_checks(&mut out);
        out
    }

    fn collect_checks(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Pred::True | Pred::Cmp(..) => {}
            Pred::QualCheck(q, _) => {
                out.insert(*q);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_checks(out);
                b.collect_checks(out);
            }
        }
    }

    /// Variables mentioned anywhere in the predicate.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Pred::True => {}
            Pred::Cmp(_, a, b) => {
                for t in [a, b] {
                    if let PTerm::Var(x) = t {
                        out.insert(*x);
                    }
                }
            }
            Pred::QualCheck(_, x) => {
                out.insert(*x);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => f.write_str("true"),
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::QualCheck(q, x) => write!(f, "{q}({x})"),
            Pred::And(a, b) => write!(f, "({a} && {b})"),
            Pred::Or(a, b) => write!(f, "({a} || {b})"),
        }
    }
}

/// A `case` or `restrict` clause: declared variables, a pattern, and a
/// guard predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause {
    /// `decl` variable declarations scoping the clause.
    pub decls: Vec<VarDecl>,
    /// The expression pattern.
    pub pattern: Pattern,
    /// The `where` predicate ([`Pred::True`] if absent).
    pub guard: Pred,
    /// Source location.
    pub span: Span,
}

impl Clause {
    /// Looks up a declared variable.
    pub fn decl(&self, name: Symbol) -> Option<&VarDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

/// An allowed right-hand-side form in an `assign` block (reference
/// qualifiers). The paper's `unique` uses `NULL | new`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssignRhs {
    /// The literal `NULL`.
    Null,
    /// A fresh allocation (`malloc`).
    New,
    /// Any constant.
    Const,
}

impl fmt::Display for AssignRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AssignRhs::Null => "NULL",
            AssignRhs::New => "new",
            AssignRhs::Const => "const",
        })
    }
}

/// What uses of a reference-qualified l-value are disallowed on
/// right-hand sides (paper §2.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Disallow {
    /// The l-value may not be referred to (`disallow L`).
    pub ref_use: bool,
    /// The l-value may not have its address taken (`disallow &X`).
    pub addr_of: bool,
}

/// A term in an `invariant` clause.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvTerm {
    /// `value(X)` — the subject's value in the execution state.
    Value(Symbol),
    /// `location(X)` — the subject's address (reference qualifiers).
    Location(Symbol),
    /// A quantified variable `P`.
    Var(Symbol),
    /// `*P` — the contents of quantified location `P`.
    DerefVar(Symbol),
    /// Integer literal.
    Int(i64),
    /// `NULL`.
    Null,
}

impl fmt::Display for InvTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvTerm::Value(x) => write!(f, "value({x})"),
            InvTerm::Location(x) => write!(f, "location({x})"),
            InvTerm::Var(x) => write!(f, "{x}"),
            InvTerm::DerefVar(x) => write!(f, "*{x}"),
            InvTerm::Int(v) => write!(f, "{v}"),
            InvTerm::Null => f.write_str("NULL"),
        }
    }
}

/// The body of an `invariant` clause: a predicate over an implicit
/// arbitrary execution state ρ (paper §2.1.3, §2.2.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvPred {
    /// Comparison.
    Cmp(CmpOp, InvTerm, InvTerm),
    /// `isHeapLoc(t)` — the value is a dynamically allocated location.
    IsHeapLoc(InvTerm),
    /// Conjunction.
    And(Box<InvPred>, Box<InvPred>),
    /// Disjunction.
    Or(Box<InvPred>, Box<InvPred>),
    /// Implication.
    Implies(Box<InvPred>, Box<InvPred>),
    /// Negation.
    Not(Box<InvPred>),
    /// `forall T** P: body` — quantification over memory locations of the
    /// appropriate type.
    Forall(Symbol, TypePat, Box<InvPred>),
}

impl fmt::Display for InvPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvPred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            InvPred::IsHeapLoc(t) => write!(f, "isHeapLoc({t})"),
            InvPred::And(a, b) => write!(f, "({a} && {b})"),
            InvPred::Or(a, b) => write!(f, "({a} || {b})"),
            InvPred::Implies(a, b) => write!(f, "({a} => {b})"),
            InvPred::Not(a) => write!(f, "!{a}"),
            InvPred::Forall(x, ty, body) => write!(f, "(forall {ty} {x}: {body})"),
        }
    }
}

/// A complete qualifier definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QualifierDef {
    /// The qualifier name (e.g. `pos`).
    pub name: Symbol,
    /// Value or reference qualifier.
    pub kind: QualKind,
    /// The subject declaration (e.g. `int Expr E`).
    pub subject: VarDecl,
    /// Introduction rules (`case` block; value qualifiers).
    pub cases: Vec<Clause>,
    /// Checking rules (`restrict` block).
    pub restricts: Vec<Clause>,
    /// Allowed assignment forms (`assign` block; reference qualifiers).
    pub assigns: Vec<AssignRhs>,
    /// Use restrictions (`disallow` block; reference qualifiers).
    pub disallow: Disallow,
    /// Whether the qualifier may be applied at declarations (`ondecl`).
    pub ondecl: bool,
    /// The run-time invariant, if declared.
    pub invariant: Option<InvPred>,
    /// Source location.
    pub span: Span,
}

impl QualifierDef {
    /// All other qualifiers this definition's rules refer to.
    pub fn referenced_qualifiers(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for c in self.cases.iter().chain(&self.restricts) {
            out.extend(c.guard.qual_checks());
        }
        out.remove(&self.name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_vars() {
        assert_eq!(Pattern::New.vars(), vec![]);
        assert_eq!(
            Pattern::Binop(BinOp::Mul, Symbol::intern("E1"), Symbol::intern("E2")).vars(),
            vec![Symbol::intern("E1"), Symbol::intern("E2")]
        );
        assert_eq!(
            Pattern::Deref(Symbol::intern("E")).vars(),
            vec![Symbol::intern("E")]
        );
    }

    #[test]
    fn pred_collects_qual_checks_and_vars() {
        let p = Pred::And(
            Box::new(Pred::QualCheck(Symbol::intern("pos"), Symbol::intern("E1"))),
            Box::new(Pred::Cmp(
                CmpOp::Gt,
                PTerm::Var(Symbol::intern("C")),
                PTerm::Int(0),
            )),
        );
        assert!(p.qual_checks().contains(&Symbol::intern("pos")));
        assert!(p.vars().contains(&Symbol::intern("E1")));
        assert!(p.vars().contains(&Symbol::intern("C")));
    }

    #[test]
    fn display_round_trips_shapes() {
        let pat = Pattern::Binop(BinOp::Mul, Symbol::intern("E1"), Symbol::intern("E2"));
        assert_eq!(pat.to_string(), "E1 * E2");
        let inv = InvPred::Cmp(
            CmpOp::Gt,
            InvTerm::Value(Symbol::intern("E")),
            InvTerm::Int(0),
        );
        assert_eq!(inv.to_string(), "value(E) > 0");
        assert_eq!(
            TypePat::Any(Symbol::intern("T"))
                .ptr_to()
                .ptr_to()
                .to_string(),
            "T**"
        );
    }

    #[test]
    fn referenced_qualifiers_excludes_self() {
        let def = QualifierDef {
            name: Symbol::intern("nonzero"),
            kind: QualKind::Value,
            subject: VarDecl {
                name: Symbol::intern("E"),
                ty: TypePat::Int,
                classifier: Classifier::Expr,
            },
            cases: vec![Clause {
                decls: vec![],
                pattern: Pattern::Var(Symbol::intern("E1")),
                guard: Pred::And(
                    Box::new(Pred::QualCheck(Symbol::intern("pos"), Symbol::intern("E1"))),
                    Box::new(Pred::QualCheck(
                        Symbol::intern("nonzero"),
                        Symbol::intern("E1"),
                    )),
                ),
                span: Span::DUMMY,
            }],
            restricts: vec![],
            assigns: vec![],
            disallow: Disallow::default(),
            ondecl: false,
            invariant: None,
            span: Span::DUMMY,
        };
        let refs = def.referenced_qualifiers();
        assert!(refs.contains(&Symbol::intern("pos")));
        assert!(!refs.contains(&Symbol::intern("nonzero")));
    }
}
