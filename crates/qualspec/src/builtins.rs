//! The paper's qualifier library, shipped as qualifier-definition source.
//!
//! Each constant is the DSL source of one figure from the paper (the `neg`
//! definition, which the paper says exists but does not show, is the
//! symmetric counterpart of `pos`). [`Registry::builtins`](crate::registry::Registry::builtins) parses all of
//! them into a ready-to-use [`Registry`](crate::registry::Registry).

/// Figure 1: positive integers.
pub const POS: &str = "
value qualifier pos(int Expr E)
    case E of
        decl int Const C:
            C, where C > 0
      | decl int Expr E1, E2:
            E1 * E2, where pos(E1) && pos(E2)
      | decl int Expr E1:
            -E1, where neg(E1)
    invariant value(E) > 0
";

/// The `neg` qualifier referenced by Figure 1 ("the definition of neg
/// (not shown) has rules that refer to pos").
pub const NEG: &str = "
value qualifier neg(int Expr E)
    case E of
        decl int Const C:
            C, where C < 0
      | decl int Expr E1, E2:
            E1 * E2, where (pos(E1) && neg(E2)) || (neg(E1) && pos(E2))
      | decl int Expr E1:
            -E1, where pos(E1)
    invariant value(E) < 0
";

/// Figure 3: nonzero integers, with the division `restrict` rule that
/// detects division-by-zero statically.
pub const NONZERO: &str = "
value qualifier nonzero(int Expr E)
    case E of
        decl int Const C:
            C, where C != 0
      | decl int Expr E1:
            E1, where pos(E1)
      | decl int Expr E1:
            E1, where neg(E1)
      | decl int Expr E1, E2:
            E1 * E2, where nonzero(E1) && nonzero(E2)
    restrict decl int Expr E1, E2:
        E1 / E2, where nonzero(E2)
    invariant value(E) != 0
";

/// Figure 12: nonnull pointers, with the `restrict` rule requiring every
/// dereference to be to a nonnull expression.
pub const NONNULL: &str = "
value qualifier nonnull(T* Expr E)
    case E of
        decl T LValue L:
            &L
    restrict decl T* Expr F:
        *F, where nonnull(F)
    invariant value(E) != NULL
";

/// Figure 4: the untainted flow qualifier (no case block — introduced
/// only via casts; soundness of flow is the implicit value-qualifier
/// subtyping).
pub const UNTAINTED: &str = "
value qualifier untainted(T Expr E)
";

/// §6.3's extension of [`UNTAINTED`]: all constants are trusted.
pub const UNTAINTED_CONSTS: &str = "
value qualifier untainted(T Expr E)
    case E of
        decl T Const C:
            C
";

/// Figure 4: the tainted flow qualifier (any expression may be considered
/// tainted).
pub const TAINTED: &str = "
value qualifier tainted(T Expr E)
    case E of
        decl T Expr E1:
            E1
";

/// Figure 5: unique pointers.
pub const UNIQUE: &str = "
ref qualifier unique(T* LValue L)
    assign L NULL | new
    disallow L
    invariant value(L) == NULL ||
        (isHeapLoc(value(L)) &&
         forall T** P: *P == value(L) => P == location(L))
";

/// Figure 7: unaliased variables.
pub const UNALIASED: &str = "
ref qualifier unaliased(T Var X)
    ondecl
    disallow &X
    invariant forall T** P: *P != location(X)
";

/// All builtin sources with their names, using the constants-are-trusted
/// variant of `untainted` (the one the paper's experiments use).
pub const ALL: [(&str, &str); 8] = [
    ("pos", POS),
    ("neg", NEG),
    ("nonzero", NONZERO),
    ("nonnull", NONNULL),
    ("untainted", UNTAINTED_CONSTS),
    ("tainted", TAINTED),
    ("unique", UNIQUE),
    ("unaliased", UNALIASED),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_qualifiers;

    #[test]
    fn every_builtin_parses() {
        for (name, src) in ALL {
            let defs = parse_qualifiers(src).unwrap_or_else(|e| panic!("builtin {name}: {e}"));
            assert_eq!(defs.len(), 1, "builtin {name}");
            assert_eq!(defs[0].name.as_str(), name);
        }
    }

    #[test]
    fn plain_untainted_parses_too() {
        let defs = parse_qualifiers(UNTAINTED).unwrap();
        assert!(defs[0].cases.is_empty());
    }
}
