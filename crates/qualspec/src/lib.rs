//! The qualifier-definition language (paper §2).
//!
//! Users define new type qualifiers in a small declarative language:
//! *value* qualifiers carry `case` (introduction) and `restrict`
//! (checking) rules over expression patterns, *reference* qualifiers carry
//! `assign` / `disallow` / `ondecl` rules over l-values, and either kind
//! may declare the run-time `invariant` its rules are meant to guarantee.
//!
//! This crate provides:
//!
//! * [`ast`] — the definition AST,
//! * [`parse`] — a parser accepting the paper's figures verbatim,
//! * [`wf`] — well-formedness checking,
//! * [`builtins`] — the paper's qualifier library as DSL source,
//! * [`registry`] — the set of definitions in force for a session.
//!
//! # Examples
//!
//! ```
//! use stq_qualspec::Registry;
//!
//! let mut registry = Registry::builtins();
//! registry.add_source(
//!     "value qualifier even(int Expr E)
//!          case E of
//!              decl int Expr E1, E2:
//!                  E1 + E2, where even(E1) && even(E2)",
//! )?;
//! assert!(registry.get_by_name("even").is_some());
//! assert!(!registry.check_well_formed().has_errors());
//! # Ok::<(), stq_qualspec::parse::SpecError>(())
//! ```

pub mod ast;
pub mod builtins;
pub mod parse;
pub mod print;
pub mod registry;
pub mod wf;

pub use ast::{
    AssignRhs, Classifier, Clause, CmpOp, Disallow, InvPred, InvTerm, PTerm, Pattern, Pred,
    QualKind, QualifierDef, TypePat, VarDecl,
};
pub use parse::{parse_qualifiers, parse_qualifiers_resilient, SpecError};
pub use print::def_to_source;
pub use registry::Registry;
