//! Well-formedness checking of qualifier definitions.
//!
//! The extensible typechecker and the soundness checker both assume the
//! structural invariants enforced here: value qualifiers only use
//! `case`/`restrict`, reference qualifiers only use
//! `assign`/`disallow`/`ondecl`, every variable mentioned in a pattern or
//! predicate is declared, comparison operands are constants, and qualifier
//! checks reference qualifiers that actually exist.

use crate::ast::*;
use std::collections::BTreeSet;
use stq_util::{Diagnostics, Symbol};

/// Checks one definition against the set of all known qualifier names.
/// Problems are reported as errors into the returned bag.
pub fn check_def(def: &QualifierDef, known: &BTreeSet<Symbol>) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let span = def.span;
    let mut error = |msg: String| diags.error(span, msg);

    match def.kind {
        QualKind::Value => {
            if def.subject.classifier != Classifier::Expr {
                error(format!(
                    "value qualifier `{}` must apply to Expr subjects, not {}",
                    def.name, def.subject.classifier
                ));
            }
            if !def.assigns.is_empty() {
                error(format!(
                    "value qualifier `{}` may not have an assign block",
                    def.name
                ));
            }
            if def.disallow.ref_use || def.disallow.addr_of {
                error(format!(
                    "value qualifier `{}` may not have a disallow block",
                    def.name
                ));
            }
            if def.ondecl {
                error(format!(
                    "value qualifier `{}` may not be declared ondecl",
                    def.name
                ));
            }
        }
        QualKind::Ref => {
            if !matches!(def.subject.classifier, Classifier::LValue | Classifier::Var) {
                error(format!(
                    "reference qualifier `{}` must apply to LValue or Var subjects, not {}",
                    def.name, def.subject.classifier
                ));
            }
            if !def.cases.is_empty() {
                error(format!(
                    "reference qualifier `{}` may not have a case block",
                    def.name
                ));
            }
            if !def.restricts.is_empty() {
                error(format!(
                    "reference qualifier `{}` may not have a restrict block",
                    def.name
                ));
            }
        }
    }

    for (what, clauses) in [("case", &def.cases), ("restrict", &def.restricts)] {
        for clause in clauses {
            check_clause(def, what, clause, known, &mut diags);
        }
    }

    if let Some(inv) = &def.invariant {
        check_invariant(def, inv, &mut diags);
    }

    diags
}

fn check_clause(
    def: &QualifierDef,
    what: &str,
    clause: &Clause,
    known: &BTreeSet<Symbol>,
    diags: &mut Diagnostics,
) {
    let declared: BTreeSet<Symbol> = clause.decls.iter().map(|d| d.name).collect();
    for v in clause.pattern.vars() {
        if !declared.contains(&v) {
            diags.error(
                clause.span,
                format!(
                    "{what} clause of `{}` uses undeclared pattern variable `{v}`",
                    def.name
                ),
            );
        }
    }
    if let Pattern::AddrOf(x) = &clause.pattern {
        if let Some(d) = clause.decl(*x) {
            if !matches!(d.classifier, Classifier::LValue | Classifier::Var) {
                diags.error(
                    clause.span,
                    format!(
                        "`&{x}` requires {x} to have classifier LValue or Var, not {}",
                        d.classifier
                    ),
                );
            }
        }
    }
    check_pred(def, clause, &clause.guard, known, diags);
}

fn check_pred(
    def: &QualifierDef,
    clause: &Clause,
    pred: &Pred,
    known: &BTreeSet<Symbol>,
    diags: &mut Diagnostics,
) {
    match pred {
        Pred::True => {}
        Pred::Cmp(_, a, b) => {
            for t in [a, b] {
                if let PTerm::Var(x) = t {
                    match clause.decl(*x) {
                        None => diags.error(
                            clause.span,
                            format!("predicate of `{}` uses undeclared variable `{x}`", def.name),
                        ),
                        Some(d) if d.classifier != Classifier::Const => diags.error(
                            clause.span,
                            format!(
                                "comparison operand `{x}` must have classifier Const, not {}",
                                d.classifier
                            ),
                        ),
                        Some(_) => {}
                    }
                }
            }
        }
        Pred::QualCheck(q, x) => {
            if !known.contains(q) {
                diags.error(
                    clause.span,
                    format!("`{}` checks unknown qualifier `{q}`", def.name),
                );
            }
            if clause.decl(*x).is_none() {
                diags.error(
                    clause.span,
                    format!("qualifier check `{q}({x})` uses undeclared variable `{x}`"),
                );
            }
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            check_pred(def, clause, a, known, diags);
            check_pred(def, clause, b, known, diags);
        }
    }
}

fn check_invariant(def: &QualifierDef, inv: &InvPred, diags: &mut Diagnostics) {
    let mut bound = BTreeSet::new();
    check_inv_pred(def, inv, &mut bound, diags);
}

fn check_inv_pred(
    def: &QualifierDef,
    inv: &InvPred,
    bound: &mut BTreeSet<Symbol>,
    diags: &mut Diagnostics,
) {
    match inv {
        InvPred::Cmp(_, a, b) => {
            check_inv_term(def, a, bound, diags);
            check_inv_term(def, b, bound, diags);
        }
        InvPred::IsHeapLoc(t) => check_inv_term(def, t, bound, diags),
        InvPred::And(a, b) | InvPred::Or(a, b) | InvPred::Implies(a, b) => {
            check_inv_pred(def, a, bound, diags);
            check_inv_pred(def, b, bound, diags);
        }
        InvPred::Not(a) => check_inv_pred(def, a, bound, diags),
        InvPred::Forall(x, _, body) => {
            let fresh = bound.insert(*x);
            check_inv_pred(def, body, bound, diags);
            if fresh {
                bound.remove(x);
            }
        }
    }
}

fn check_inv_term(
    def: &QualifierDef,
    t: &InvTerm,
    bound: &BTreeSet<Symbol>,
    diags: &mut Diagnostics,
) {
    match t {
        InvTerm::Int(_) | InvTerm::Null => {}
        InvTerm::Value(x) => {
            if *x != def.subject.name {
                diags.error(
                    def.span,
                    format!(
                        "invariant of `{}` applies value() to `{x}`, not the subject `{}`",
                        def.name, def.subject.name
                    ),
                );
            }
        }
        InvTerm::Location(x) => {
            if def.kind != QualKind::Ref {
                diags.error(
                    def.span,
                    format!(
                        "invariant of value qualifier `{}` may not use location()",
                        def.name
                    ),
                );
            }
            if *x != def.subject.name {
                diags.error(
                    def.span,
                    format!(
                        "invariant of `{}` applies location() to `{x}`, not the subject `{}`",
                        def.name, def.subject.name
                    ),
                );
            }
        }
        InvTerm::Var(x) | InvTerm::DerefVar(x) => {
            if !bound.contains(x) {
                diags.error(
                    def.span,
                    format!(
                        "invariant of `{}` uses unbound variable `{x}` (bind it with forall)",
                        def.name
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_qualifiers;

    fn check(src: &str, known: &[&str]) -> Diagnostics {
        let defs = parse_qualifiers(src).expect("parse");
        let known: BTreeSet<Symbol> = known.iter().map(|s| Symbol::intern(s)).collect();
        let mut all = Diagnostics::new();
        for d in &defs {
            all.extend_from(check_def(d, &known));
        }
        all
    }

    #[test]
    fn figure_definitions_are_well_formed() {
        let diags = check(
            "value qualifier pos(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                  | decl int Expr E1, E2: E1 * E2, where pos(E1) && pos(E2)
                invariant value(E) > 0",
            &["pos", "neg"],
        );
        assert!(!diags.has_errors(), "{diags}");
    }

    #[test]
    fn value_qualifier_with_assign_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                assign E NULL",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn ref_qualifier_with_case_is_rejected() {
        let diags = check(
            "ref qualifier q(T* LValue L)
                case L of
                    decl int Const C: C",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn value_qualifier_on_lvalue_subject_is_rejected() {
        let diags = check("value qualifier q(T* LValue L)", &["q"]);
        assert!(diags.has_errors());
    }

    #[test]
    fn undeclared_pattern_variable_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                case E of
                    decl int Expr E1: E1 * E2",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn comparison_on_expr_variable_is_rejected() {
        // Only Const-classified variables may appear in comparisons
        // (paper §2.1.1: "operations on constants").
        let diags = check(
            "value qualifier q(int Expr E)
                case E of
                    decl int Expr E1: E1, where E1 > 0",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn unknown_qualifier_check_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                case E of
                    decl int Expr E1: E1, where mystery(E1)",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn invariant_on_wrong_variable_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                invariant value(F) > 0",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn location_in_value_invariant_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                invariant location(E) != NULL",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn unbound_invariant_variable_is_rejected() {
        let diags = check(
            "ref qualifier q(T* LValue L)
                invariant *P != value(L)",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn forall_binds_invariant_variable() {
        let diags = check(
            "ref qualifier q(T* LValue L)
                invariant forall T** P: *P != value(L)",
            &["q"],
        );
        assert!(!diags.has_errors(), "{diags}");
    }

    #[test]
    fn ondecl_on_value_qualifier_is_rejected() {
        let diags = check(
            "value qualifier q(int Expr E)
                ondecl",
            &["q"],
        );
        assert!(diags.has_errors());
    }

    #[test]
    fn addr_of_pattern_requires_lvalue_classifier() {
        let diags = check(
            "value qualifier q(T* Expr E)
                case E of
                    decl T Expr X: &X",
            &["q"],
        );
        assert!(diags.has_errors());
        let ok = check(
            "value qualifier q(T* Expr E)
                case E of
                    decl T LValue X: &X",
            &["q"],
        );
        assert!(!ok.has_errors(), "{ok}");
    }
}
