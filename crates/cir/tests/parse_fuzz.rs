//! Fuzz tests for the error-resilient C-subset parser.
//!
//! The resilient entry point must be *total*: for any input — raw byte
//! soup, random token streams, or a valid program with a corrupted
//! region — it returns a (possibly partial) AST plus diagnostics and
//! never panics. When it reports no errors, the strict parser must
//! agree that the source is well-formed.

use proptest::prelude::*;
use stq_cir::parse::{parse_program, parse_program_resilient};

const QUALS: &[&str] = &["pos", "nonnull", "untainted"];

/// Fragments the lexer knows, so token soup exercises the parser's
/// recovery logic rather than dying at the first lex error.
const VOCAB: &[&str] = &[
    "int", "char", "void", "struct", "if", "else", "while", "for", "return", "break", "continue",
    "NULL", "pos", "nonnull", "x", "y", "f", "buf", "(", ")", "{", "}", ";", ",", "*", "&", "+",
    "-", "=", "==", "!=", "<", ">", "[", "]", ".", "0", "1", "42", "\"s\"",
];

fn tokens_to_source(idxs: &[usize]) -> String {
    idxs.iter()
        .map(|i| VOCAB[i % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A well-formed program used as the seed for corruption tests.
const VALID: &str = "struct pair { int a; int b; };\n\
                     int g;\n\
                     int pos dbl(int pos x) { return (int pos)(x * 2); }\n\
                     int f(int* nonnull p) { int v = *p; if (v < 0) { return 0; } return v; }";

/// The totality property shared by every generator: parsing never
/// panics (the harness would report the panic as a test failure), and
/// a silent parse — no diagnostics — means the input really was
/// well-formed, which the strict parser must confirm.
fn assert_total(src: &str) {
    let (program, errors) = parse_program_resilient(src, QUALS);
    if errors.is_empty() {
        match parse_program(src, QUALS) {
            Ok(p) => assert_eq!(
                program.funcs.len(),
                p.funcs.len(),
                "silent resilient parse disagrees with strict parse on:\n{src}"
            ),
            Err(e) => panic!("resilient parse was silent but strict parse failed ({e}) on:\n{src}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&src);
    }

    #[test]
    fn token_soup_never_panics(idxs in prop::collection::vec(any::<usize>(), 0..96)) {
        let src = tokens_to_source(&idxs);
        assert_total(&src);
    }

    #[test]
    fn corrupted_valid_source_still_yields_diagnostics_or_an_ast(
        at in any::<usize>(),
        garbage in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        // Splice garbage into the middle of a valid program at a
        // char boundary; the parser must either recover around it or
        // report what it saw — never unwind.
        let mut pos = at % (VALID.len() + 1);
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut src = String::new();
        src.push_str(&VALID[..pos]);
        src.push_str(&String::from_utf8_lossy(&garbage));
        src.push_str(&VALID[pos..]);
        assert_total(&src);
    }

    #[test]
    fn truncated_valid_source_never_panics(at in any::<usize>()) {
        let mut pos = at % (VALID.len() + 1);
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        assert_total(&VALID[..pos]);
    }
}
