//! Property tests over randomly generated C-subset programs:
//!
//! * the pretty-printer's output re-parses, and printing is idempotent
//!   (print ∘ parse ∘ print = print);
//! * the interpreter is deterministic and never panics — it either
//!   completes or reports a structured runtime error.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use stq_cir::interp::{run_entry, InterpConfig, NoChecks, Value};
use stq_cir::parse::parse_program;
use stq_cir::pretty::program_to_string;

const QUALS: &[&str] = &["pos", "neg", "nonzero", "nonnull", "untainted"];

/// Generates a random but *parseable* program as source text. The
/// generator emits well-scoped variables; it does not try to be
/// well-typed, only syntactically valid.
fn random_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let n_funcs = rng.gen_range(1..4);
    for f in 0..n_funcs {
        let n_params = rng.gen_range(0..3usize);
        let params: Vec<String> = (0..n_params)
            .map(|i| format!("{} p{i}", random_type(&mut rng)))
            .collect();
        let _ = writeln!(
            out,
            "int f{f}({}) {{",
            if params.is_empty() {
                "void".to_owned()
            } else {
                params.join(", ")
            }
        );
        let mut locals: Vec<String> = (0..n_params).map(|i| format!("p{i}")).collect();
        let n_stmts = rng.gen_range(1..8);
        for s in 0..n_stmts {
            emit_stmt(&mut rng, &mut out, &mut locals, s, 1);
        }
        let _ = writeln!(out, "    return 0;");
        let _ = writeln!(out, "}}");
    }
    out
}

fn random_type(rng: &mut StdRng) -> String {
    let base = if rng.gen_bool(0.8) { "int" } else { "char" };
    let stars = if rng.gen_bool(0.3) { "*" } else { "" };
    let qual = if rng.gen_bool(0.2) {
        format!(" {}", QUALS[rng.gen_range(0..QUALS.len())])
    } else {
        String::new()
    };
    format!("{base}{stars}{qual}")
}

fn emit_stmt(
    rng: &mut StdRng,
    out: &mut String,
    locals: &mut Vec<String>,
    idx: usize,
    depth: usize,
) {
    let pad = "    ".repeat(depth);
    match rng.gen_range(0..5) {
        0 => {
            let name = format!("v{depth}_{idx}");
            let _ = writeln!(
                out,
                "{pad}int {name} = {};",
                random_int_expr(rng, locals, 2)
            );
            locals.push(name);
        }
        1 if !locals.is_empty() => {
            let target = &locals[rng.gen_range(0..locals.len())];
            let _ = writeln!(out, "{pad}{target} = {};", random_int_expr(rng, locals, 2));
        }
        2 => {
            let _ = writeln!(out, "{pad}if ({}) {{", random_int_expr(rng, locals, 1));
            let mut inner = locals.clone();
            emit_stmt(rng, out, &mut inner, idx, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        3 => {
            // A bounded loop: always terminates.
            let name = format!("i{depth}_{idx}");
            let _ = writeln!(
                out,
                "{pad}for (int {name} = 0; {name} < {}; {name}++) {{",
                rng.gen_range(1..5)
            );
            let mut inner = locals.clone();
            inner.push(name);
            emit_stmt(rng, out, &mut inner, idx, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        _ => {
            let name = format!("w{depth}_{idx}");
            let _ = writeln!(out, "{pad}int {name};");
            locals.push(name);
        }
    }
}

fn random_int_expr(rng: &mut StdRng, locals: &[String], depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.4) {
        if !locals.is_empty() && rng.gen_bool(0.5) {
            return locals[rng.gen_range(0..locals.len())].clone();
        }
        return rng.gen_range(-9i64..=9).to_string();
    }
    let a = random_int_expr(rng, locals, depth - 1);
    let b = random_int_expr(rng, locals, depth - 1);
    let op = ["+", "-", "*", "==", "!=", "<", ">"][rng.gen_range(0..7usize)];
    format!("({a} {op} {b})")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printing_round_trips(seed in any::<u64>()) {
        let src = random_source(seed);
        let p1 = parse_program(&src, QUALS)
            .unwrap_or_else(|e| panic!("generated source failed to parse: {e}\n{src}"));
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed, QUALS)
            .unwrap_or_else(|e| panic!("printed source failed to re-parse: {e}\n{printed}"));
        prop_assert_eq!(
            &printed,
            &program_to_string(&p2),
            "printing is not idempotent"
        );
    }

    #[test]
    fn interpreter_is_deterministic_and_total(seed in any::<u64>()) {
        let src = random_source(seed);
        let program = parse_program(&src, QUALS).expect("generated source parses");
        let config = InterpConfig { max_steps: 50_000, ..InterpConfig::default() };
        let run = || {
            run_entry(&program, "f0", &[Value::Int(1), Value::Int(2), Value::Int(3)],
                      &NoChecks, config)
        };
        let a = run();
        let b = run();
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.ret, y.ret);
                prop_assert_eq!(&x.stdout, &y.stdout);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            other => prop_assert!(false, "nondeterministic outcome: {other:?}"),
        }
    }
}
