//! A CIL-like front end for a C subset.
//!
//! CIL (the "C Intermediate Language") is the infrastructure the paper's
//! extensible typechecker is built on. This crate rebuilds the parts the
//! paper relies on, for a C subset rich enough to express every program
//! fragment the paper's qualifiers mention:
//!
//! * [`ast`] — the intermediate representation, with CIL's defining
//!   property that **expressions are side-effect-free** and calls,
//!   assignments, and allocation are separate *instructions*;
//! * [`lex`] / [`parse`] — a front end that reads C-subset source with
//!   postfix qualifier annotations (`int pos x`, `char * untainted fmt`)
//!   and performs CIL-style normalization (`a[i]` → `*(a+i)`,
//!   `e->f` → `(*e).f`, calls hoisted out of initializers, `for` → `while`);
//! * [`pretty`] — prints the IR back to compilable C-subset text;
//! * [`interp`] — a concrete interpreter used to execute instrumented
//!   run-time qualifier checks and to differentially test soundness.
//!
//! # Examples
//!
//! ```
//! use stq_cir::parse::parse_program;
//! use stq_cir::interp::{run_entry, NoChecks, Value, InterpConfig};
//!
//! let program = parse_program(
//!     "int pos double_it(int pos x) { return (int pos)(x * 2); }",
//!     &["pos"],
//! )?;
//! let out = run_entry(&program, "double_it", &[Value::Int(21)],
//!                     &NoChecks, InterpConfig::default())?;
//! assert_eq!(out.ret, Some(Value::Int(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod interp;
pub mod lex;
pub mod parse;
pub mod pretty;

pub use ast::{
    BaseTy, BinOp, Expr, ExprKind, FuncDef, FuncProto, FuncSig, GlobalDecl, Instr, InstrKind,
    LocalDecl, LvalKind, Lvalue, Program, QualType, Stmt, StmtKind, StructDef, Ty, UnOp,
};
pub use parse::{parse_program, parse_program_resilient, ParseError};
