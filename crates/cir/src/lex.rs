//! Lexer for the C subset (shared vocabulary with the qualifier-definition
//! language, which has its own parser in `stq-qualspec`).

use std::fmt;
use stq_util::{Span, Symbol};

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(Symbol),
    /// Integer literal.
    Int(i64),
    /// String literal (contents, unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `:`.
    Colon,
    /// `*`.
    Star,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Assign,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Not,
    /// `~`.
    Tilde,
    /// `.`.
    Dot,
    /// `->`.
    Arrow,
    /// `=>`.
    FatArrow,
    /// `...`.
    Ellipsis,
    /// `++`.
    PlusPlus,
    /// `--`.
    MinusMinus,
    /// `+=`.
    PlusEq,
    /// `-=`.
    MinusEq,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Semi => f.write_str(";"),
            Tok::Comma => f.write_str(","),
            Tok::Colon => f.write_str(":"),
            Tok::Star => f.write_str("*"),
            Tok::Amp => f.write_str("&"),
            Tok::Pipe => f.write_str("|"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Assign => f.write_str("="),
            Tok::EqEq => f.write_str("=="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Not => f.write_str("!"),
            Tok::Tilde => f.write_str("~"),
            Tok::Dot => f.write_str("."),
            Tok::Arrow => f.write_str("->"),
            Tok::FatArrow => f.write_str("=>"),
            Tok::Ellipsis => f.write_str("..."),
            Tok::PlusPlus => f.write_str("++"),
            Tok::MinusMinus => f.write_str("--"),
            Tok::PlusEq => f.write_str("+="),
            Tok::MinusEq => f.write_str("-="),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

/// A lexing failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, skipping whitespace, `//` line comments, and `/* */`
/// block comments. The final token is always [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings or comments, integer
/// overflow, and unexpected characters.
///
/// # Examples
///
/// ```
/// use stq_cir::lex::{lex, Tok};
///
/// let toks = lex("int pos x = 3; // comment").unwrap();
/// assert!(matches!(toks[0].tok, Tok::Ident(_)));
/// assert_eq!(toks[3].tok, Tok::Assign);
/// assert_eq!(toks[4].tok, Tok::Int(3));
/// assert_eq!(toks.last().unwrap().tok, Tok::Eof);
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| LexError {
        message: msg.to_owned(),
        span: Span::new(at as u32, (at + 1).min(src.len()) as u32),
    };
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            toks.push(Token {
                tok: Tok::Ident(Symbol::intern(text)),
                span: Span::new(start as u32, i as u32),
            });
            continue;
        }
        // Integer literals.
        if c.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &src[start..i];
            let value: i64 = text
                .parse()
                .map_err(|_| err("integer literal overflows i64", start))?;
            toks.push(Token {
                tok: Tok::Int(value),
                span: Span::new(start as u32, i as u32),
            });
            continue;
        }
        // String literals.
        if c == b'"' {
            i += 1;
            let mut out = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(err("unterminated string literal", start));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        if i + 1 >= bytes.len() {
                            return Err(err("unterminated escape", i));
                        }
                        let esc = bytes[i + 1];
                        out.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'0' => '\0',
                            b'\\' => '\\',
                            b'"' => '"',
                            other => {
                                return Err(err(&format!("unknown escape \\{}", other as char), i))
                            }
                        });
                        i += 2;
                    }
                    other => {
                        out.push(other as char);
                        i += 1;
                    }
                }
            }
            toks.push(Token {
                tok: Tok::Str(out),
                span: Span::new(start as u32, i as u32),
            });
            continue;
        }
        // Character literals become integer literals.
        if c == b'\'' {
            if i + 2 < bytes.len() && bytes[i + 1] != b'\\' && bytes[i + 2] == b'\'' {
                toks.push(Token {
                    tok: Tok::Int(i64::from(bytes[i + 1])),
                    span: Span::new(start as u32, (i + 3) as u32),
                });
                i += 3;
                continue;
            }
            if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' {
                let v = match bytes[i + 2] {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'0' => 0,
                    b'\\' => b'\\',
                    other => other,
                };
                toks.push(Token {
                    tok: Tok::Int(i64::from(v)),
                    span: Span::new(start as u32, (i + 4) as u32),
                });
                i += 4;
                continue;
            }
            return Err(err("malformed character literal", start));
        }
        // Punctuation, longest match first. `get` (not slicing) so a
        // multibyte character straddling the window yields "" and falls
        // through to the unexpected-character diagnostic below instead
        // of panicking on a non-boundary index.
        let two = src.get(i..i + 2).unwrap_or("");
        let three = src.get(i..i + 3).unwrap_or("");
        let (tok, len) = if three == "..." {
            (Tok::Ellipsis, 3)
        } else {
            match two {
                "==" => (Tok::EqEq, 2),
                "!=" => (Tok::Ne, 2),
                "<=" => (Tok::Le, 2),
                ">=" => (Tok::Ge, 2),
                "&&" => (Tok::AndAnd, 2),
                "||" => (Tok::OrOr, 2),
                "->" => (Tok::Arrow, 2),
                "=>" => (Tok::FatArrow, 2),
                "++" => (Tok::PlusPlus, 2),
                "--" => (Tok::MinusMinus, 2),
                "+=" => (Tok::PlusEq, 2),
                "-=" => (Tok::MinusEq, 2),
                _ => match c {
                    b'(' => (Tok::LParen, 1),
                    b')' => (Tok::RParen, 1),
                    b'{' => (Tok::LBrace, 1),
                    b'}' => (Tok::RBrace, 1),
                    b'[' => (Tok::LBracket, 1),
                    b']' => (Tok::RBracket, 1),
                    b';' => (Tok::Semi, 1),
                    b',' => (Tok::Comma, 1),
                    b':' => (Tok::Colon, 1),
                    b'*' => (Tok::Star, 1),
                    b'&' => (Tok::Amp, 1),
                    b'|' => (Tok::Pipe, 1),
                    b'+' => (Tok::Plus, 1),
                    b'-' => (Tok::Minus, 1),
                    b'/' => (Tok::Slash, 1),
                    b'%' => (Tok::Percent, 1),
                    b'=' => (Tok::Assign, 1),
                    b'<' => (Tok::Lt, 1),
                    b'>' => (Tok::Gt, 1),
                    b'!' => (Tok::Not, 1),
                    b'~' => (Tok::Tilde, 1),
                    b'.' => (Tok::Dot, 1),
                    other => {
                        return Err(err(&format!("unexpected character {:?}", other as char), i))
                    }
                },
            }
        };
        toks.push(Token {
            tok,
            span: Span::new(start as u32, (start + len) as u32),
        });
        i += len;
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len() as u32, src.len() as u32),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Tok::Eof]);
    }

    #[test]
    fn identifiers_and_ints() {
        assert_eq!(
            kinds("foo 42 _bar9"),
            vec![
                Tok::Ident(Symbol::intern("foo")),
                Tok::Int(42),
                Tok::Ident(Symbol::intern("_bar9")),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n still */ c"),
            vec![
                Tok::Ident(Symbol::intern("a")),
                Tok::Ident(Symbol::intern("b")),
                Tok::Ident(Symbol::intern("c")),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("a /* oops").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb" "%s""#),
            vec![
                Tok::Str("a\nb".to_owned()),
                Tok::Str("%s".to_owned()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn char_literals_are_ints() {
        assert_eq!(kinds("'a'"), vec![Tok::Int(97), Tok::Eof]);
        assert_eq!(kinds("'\\n'"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(kinds("'\\0'"), vec![Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || -> ... ++ += --"),
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Arrow,
                Tok::Ellipsis,
                Tok::PlusPlus,
                Tok::PlusEq,
                Tok::MinusMinus,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a - > b"),
            vec![
                Tok::Ident(Symbol::intern("a")),
                Tok::Minus,
                Tok::Gt,
                Tok::Ident(Symbol::intern("b")),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_offsets() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn integer_overflow_errors() {
        assert!(lex("999999999999999999999999999").is_err());
    }
}
