//! A concrete interpreter for the IR.
//!
//! The interpreter serves three purposes in the reproduction:
//!
//! 1. it executes the **run-time checks** that cast instrumentation
//!    inserts for value-qualifier casts (paper §2.1.3): a failed check is
//!    a fatal error, surfaced here as [`RuntimeError::CheckFailed`];
//! 2. it provides the ground truth for **differential soundness testing**:
//!    programs that typecheck must never violate a proven qualifier's
//!    invariant at run time;
//! 3. it models the **format-string vulnerability** the paper's
//!    `untainted` experiment rediscovers in bftpd — `printf` with more
//!    conversion specifiers than arguments raises
//!    [`RuntimeError::FormatString`].
//!
//! Memory is the paper's logical model: one cell per scalar, addresses are
//! opaque integers, `NULL` is address 0, and pointer arithmetic moves
//! between cells.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;
use stq_util::{Span, Symbol};

/// A run-time value: an integer or a pointer (address). `NULL` is
/// `Value::Ptr(0)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Value {
    /// Integer (also chars).
    Int(i64),
    /// Pointer to a memory cell; 0 is `NULL`.
    Ptr(u64),
}

impl Value {
    /// The `NULL` pointer.
    pub const NULL: Value = Value::Ptr(0);

    /// Truthiness for conditions.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Ptr(a) => a != 0,
        }
    }

    /// The integer, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Ptr(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr(0) => f.write_str("NULL"),
            Value::Ptr(a) => write!(f, "&{a}"),
        }
    }
}

/// A fatal execution error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// Dereference of `NULL`.
    NullDeref(Span),
    /// Division or modulo by zero.
    DivByZero(Span),
    /// Signed integer arithmetic left the representable range. The
    /// qualifier invariants are proved over mathematical integers, so
    /// executions are stopped at the point they leave that model instead
    /// of silently wrapping into values the static rules never promised
    /// anything about (a wrapped `pos * pos` can be negative — found by
    /// `stqc fuzz`'s soundness oracle).
    ArithOverflow(Span),
    /// An instrumented qualifier cast check failed (paper §2.1.3).
    CheckFailed {
        /// The qualifier whose invariant was violated.
        qual: Symbol,
        /// The offending cast.
        span: Span,
        /// The value that failed the check.
        value: String,
    },
    /// `printf` consumed more arguments than were supplied — the
    /// format-string vulnerability.
    FormatString {
        /// The offending call.
        span: Span,
        /// Description.
        detail: String,
    },
    /// Call to an unknown function.
    UnknownFunction(Symbol, Span),
    /// Reference to an unbound variable.
    Unbound(Symbol, Span),
    /// The step budget was exhausted (runaway loop).
    OutOfFuel,
    /// The call-depth budget was exhausted (runaway recursion).
    StackOverflow,
    /// A construct the interpreter does not model.
    Unsupported(String, Span),
    /// The program has no entry point.
    NoEntry(Symbol),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDeref(s) => write!(f, "null dereference at {s}"),
            RuntimeError::DivByZero(s) => write!(f, "division by zero at {s}"),
            RuntimeError::ArithOverflow(s) => write!(f, "integer overflow at {s}"),
            RuntimeError::CheckFailed { qual, span, value } => write!(
                f,
                "run-time check for qualifier `{qual}` failed on value {value} at {span}"
            ),
            RuntimeError::FormatString { span, detail } => {
                write!(f, "format-string violation at {span}: {detail}")
            }
            RuntimeError::UnknownFunction(n, s) => {
                write!(f, "call to unknown function `{n}` at {s}")
            }
            RuntimeError::Unbound(n, s) => write!(f, "unbound variable `{n}` at {s}"),
            RuntimeError::OutOfFuel => f.write_str("execution step budget exhausted"),
            RuntimeError::StackOverflow => f.write_str("call-depth budget exhausted"),
            RuntimeError::Unsupported(what, s) => write!(f, "unsupported: {what} at {s}"),
            RuntimeError::NoEntry(n) => write!(f, "no entry function `{n}`"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Evaluates a value qualifier's invariant dynamically for instrumented
/// cast checks. Implemented by `stq-typecheck` from parsed `invariant`
/// clauses; [`NoChecks`] accepts everything.
pub trait QualChecker {
    /// Whether `value` satisfies `qual`'s run-time invariant.
    fn holds(&self, qual: Symbol, value: Value) -> bool;
}

/// A [`QualChecker`] that accepts every value (no instrumentation).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoChecks;

impl QualChecker for NoChecks {
    fn holds(&self, _qual: Symbol, _value: Value) -> bool {
        true
    }
}

/// What a completed execution produced.
#[derive(Clone, Debug, Default)]
pub struct ExecOutcome {
    /// The entry function's return value.
    pub ret: Option<Value>,
    /// Everything `printf` wrote.
    pub stdout: String,
    /// Number of `printf`-family calls executed.
    pub printf_calls: usize,
    /// Number of run-time qualifier checks executed (all passed).
    pub checks_passed: usize,
}

/// Interpreter limits.
#[derive(Clone, Copy, Debug)]
pub struct InterpConfig {
    /// Maximum executed instructions before [`RuntimeError::OutOfFuel`].
    pub max_steps: u64,
    /// Maximum nested call depth before [`RuntimeError::StackOverflow`].
    /// Each interpreted call consumes host stack frames, so this bound is
    /// what keeps runaway recursion a reportable error instead of a host
    /// stack overflow.
    pub max_call_depth: u64,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            max_steps: 2_000_000,
            max_call_depth: 192,
        }
    }
}

/// Runs `entry` (with the given argument values) in `program`.
///
/// # Errors
///
/// Returns the first [`RuntimeError`] encountered.
///
/// # Examples
///
/// ```
/// use stq_cir::interp::{run_entry, NoChecks, Value, InterpConfig};
/// use stq_cir::parse::parse_program;
///
/// let p = parse_program(
///     "int add(int a, int b) { return a + b; }",
///     &[],
/// ).unwrap();
/// let out = run_entry(&p, "add", &[Value::Int(2), Value::Int(40)],
///                     &NoChecks, InterpConfig::default()).unwrap();
/// assert_eq!(out.ret, Some(Value::Int(42)));
/// ```
pub fn run_entry(
    program: &Program,
    entry: &str,
    args: &[Value],
    checker: &dyn QualChecker,
    config: InterpConfig,
) -> Result<ExecOutcome, RuntimeError> {
    let mut interp = Interp {
        program,
        checker,
        mem: HashMap::new(),
        next_addr: 1,
        globals: HashMap::new(),
        global_types: HashMap::new(),
        steps: 0,
        depth: 0,
        config,
        outcome: ExecOutcome::default(),
    };
    // Allocate and initialize globals.
    for g in &program.globals {
        let addr = interp.alloc(interp.size_of(&g.ty));
        interp.globals.insert(g.name, addr);
        interp.global_types.insert(g.name, g.ty.clone());
        if let Some(init) = &g.init {
            let mut frame = Frame::new();
            let v = interp.eval(&mut frame, init)?;
            interp.mem.insert(addr, v);
        }
    }
    let entry_sym = Symbol::intern(entry);
    let func = program
        .func(entry_sym)
        .ok_or(RuntimeError::NoEntry(entry_sym))?;
    let ret = interp.call(func, args.to_vec(), Span::DUMMY)?;
    let mut outcome = interp.outcome;
    outcome.ret = ret;
    Ok(outcome)
}

struct Frame {
    /// Lexical scopes, innermost last: name → (address, type).
    scopes: Vec<HashMap<Symbol, (u64, QualType)>>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            scopes: vec![HashMap::new()],
        }
    }

    fn lookup(&self, name: Symbol) -> Option<&(u64, QualType)> {
        self.scopes.iter().rev().find_map(|s| s.get(&name))
    }

    fn declare(&mut self, name: Symbol, addr: u64, ty: QualType) {
        self.scopes
            .last_mut()
            .expect("frame always has a scope")
            .insert(name, (addr, ty));
    }
}

enum Flow {
    Normal,
    Return(Option<Value>),
}

struct Interp<'a> {
    program: &'a Program,
    checker: &'a dyn QualChecker,
    mem: HashMap<u64, Value>,
    next_addr: u64,
    globals: HashMap<Symbol, u64>,
    global_types: HashMap<Symbol, QualType>,
    steps: u64,
    depth: u64,
    config: InterpConfig,
    outcome: ExecOutcome,
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(RuntimeError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, cells: u64) -> u64 {
        let addr = self.next_addr;
        // A hostile `malloc(huge)` must not wrap the address counter back
        // over live cells (or 0, which would alias NULL); saturating at
        // the top of the address space merely aliases fresh allocations
        // with each other, which the logical memory model tolerates.
        self.next_addr = self.next_addr.saturating_add(cells.max(1));
        addr
    }

    /// Size of a type in cells (one per scalar).
    fn size_of(&self, ty: &QualType) -> u64 {
        self.size_of_bounded(ty, 64)
    }

    /// `size_of` with a recursion budget: a struct that (transitively)
    /// contains itself by value has no finite layout, and following the
    /// cycle would overflow the host stack. Past the budget each
    /// remaining level counts as one cell.
    fn size_of_bounded(&self, ty: &QualType, budget: u32) -> u64 {
        match &ty.ty {
            Ty::Base(BaseTy::Struct(tag)) if budget > 0 => self
                .program
                .struct_def(*tag)
                .map(|s| {
                    s.fields
                        .iter()
                        .fold(0u64, |acc, (_, t)| {
                            acc.saturating_add(self.size_of_bounded(t, budget - 1))
                        })
                        .max(1)
                })
                .unwrap_or(1),
            _ => 1,
        }
    }

    fn field_offset(&self, tag: Symbol, field: Symbol) -> Option<(u64, QualType)> {
        let def = self.program.struct_def(tag)?;
        let mut off: u64 = 0;
        for (name, ty) in &def.fields {
            if *name == field {
                return Some((off, ty.clone()));
            }
            off = off.saturating_add(self.size_of(ty));
        }
        None
    }

    fn load(&self, addr: u64) -> Value {
        // Uninitialized cells read as zero (deterministic stand-in for
        // C's undefined behaviour, which the paper lists as a source of
        // unsoundness).
        self.mem.get(&addr).copied().unwrap_or(Value::Int(0))
    }

    fn call(
        &mut self,
        func: &FuncDef,
        args: Vec<Value>,
        _call_span: Span,
    ) -> Result<Option<Value>, RuntimeError> {
        if self.depth >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow);
        }
        self.depth += 1;
        let mut frame = Frame::new();
        for ((name, ty), value) in func.sig.params.iter().zip(args) {
            let addr = self.alloc(1);
            self.mem.insert(addr, value);
            frame.declare(*name, addr, ty.clone());
        }
        let flow = self.exec_block(&mut frame, &func.body);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
        }
    }

    fn exec_block(&mut self, frame: &mut Frame, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        frame.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in stmts {
            flow = self.exec_stmt(frame, s)?;
            if matches!(flow, Flow::Return(_)) {
                break;
            }
        }
        frame.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::Instr(i) => {
                self.exec_instr(frame, i)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(stmts) => self.exec_block(frame, stmts),
            StmtKind::If(cond, then, els) => {
                let c = self.eval(frame, cond)?;
                if c.is_truthy() {
                    self.exec_stmt(frame, then)
                } else if let Some(e) = els {
                    self.exec_stmt(frame, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While(cond, body) => {
                loop {
                    self.tick()?;
                    let c = self.eval(frame, cond)?;
                    if !c.is_truthy() {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_stmt(frame, body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(frame, e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Decl(d) => {
                let size = self.size_of(&d.ty);
                let addr = self.alloc(size);
                frame.declare(d.name, addr, d.ty.clone());
                if let Some(init) = &d.init {
                    let v = self.eval(frame, init)?;
                    self.mem.insert(addr, v);
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn exec_instr(&mut self, frame: &mut Frame, instr: &Instr) -> Result<(), RuntimeError> {
        self.tick()?;
        match &instr.kind {
            InstrKind::Set(lv, e) => {
                let v = self.eval(frame, e)?;
                let addr = self.lval_addr(frame, lv)?;
                self.mem.insert(addr, v);
                Ok(())
            }
            InstrKind::Alloc(lv, size) => {
                let n = match self.eval(frame, size)? {
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => 1,
                };
                let addr = self.alloc(n.max(1));
                let dst = self.lval_addr(frame, lv)?;
                self.mem.insert(dst, Value::Ptr(addr));
                Ok(())
            }
            InstrKind::Call(dst, fname, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(frame, a)?);
                }
                let ret = self.dispatch_call(*fname, argv, instr.span)?;
                if let Some(lv) = dst {
                    let addr = self.lval_addr(frame, lv)?;
                    self.mem.insert(addr, ret.unwrap_or(Value::Int(0)));
                }
                Ok(())
            }
            InstrKind::RuntimeCheck(qual, e) => {
                let v = self.eval(frame, e)?;
                if self.checker.holds(*qual, v) {
                    self.outcome.checks_passed += 1;
                    Ok(())
                } else {
                    Err(RuntimeError::CheckFailed {
                        qual: *qual,
                        span: instr.span,
                        value: v.to_string(),
                    })
                }
            }
        }
    }

    fn dispatch_call(
        &mut self,
        fname: Symbol,
        args: Vec<Value>,
        span: Span,
    ) -> Result<Option<Value>, RuntimeError> {
        match fname.as_str() {
            "printf" | "fprintf" | "syslog" => {
                // fprintf/syslog take a leading stream/priority argument.
                let skip = usize::from(fname.as_str() != "printf");
                self.outcome.printf_calls += 1;
                let written = self.do_printf(&args[skip..], span)?;
                Ok(Some(Value::Int(written)))
            }
            "free" => Ok(None),
            "abort" | "exit" => Err(RuntimeError::Unsupported(
                format!("process exit via {fname}"),
                span,
            )),
            _ => {
                if let Some(func) = self.program.func(fname) {
                    // Clone body once per call; bodies are shared references
                    // into the program otherwise.
                    let func = func.clone();
                    self.call(&func, args, span)
                } else {
                    Err(RuntimeError::UnknownFunction(fname, span))
                }
            }
        }
    }

    /// Reads a NUL-terminated string starting at `addr`.
    fn read_string(&self, mut addr: u64, span: Span) -> Result<String, RuntimeError> {
        if addr == 0 {
            return Err(RuntimeError::NullDeref(span));
        }
        let mut out = String::new();
        for _ in 0..65536 {
            match self.load(addr) {
                Value::Int(0) => return Ok(out),
                Value::Int(c) => {
                    out.push(char::from_u32((c & 0xff) as u32).unwrap_or('?'));
                    addr = addr.wrapping_add(1);
                }
                Value::Ptr(_) => return Ok(out),
            }
        }
        Ok(out)
    }

    /// The heart of the format-string vulnerability model: walks the
    /// format string, consuming one argument per conversion specifier.
    /// Reading past the supplied arguments — exactly what happens on the
    /// C stack — is a [`RuntimeError::FormatString`].
    fn do_printf(&mut self, args: &[Value], span: Span) -> Result<i64, RuntimeError> {
        let Some(&fmt_ptr) = args.first() else {
            return Err(RuntimeError::FormatString {
                span,
                detail: "printf with no format argument".to_owned(),
            });
        };
        let fmt_addr = match fmt_ptr {
            Value::Ptr(a) => a,
            Value::Int(_) => {
                return Err(RuntimeError::FormatString {
                    span,
                    detail: "format argument is not a string".to_owned(),
                })
            }
        };
        let fmt = self.read_string(fmt_addr, span)?;
        let mut rest = args[1..].iter();
        let mut out = String::new();
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('%') => out.push('%'),
                Some(spec @ ('d' | 'i' | 'u' | 'x' | 'c')) => match rest.next() {
                    Some(Value::Int(v)) => out.push_str(&v.to_string()),
                    Some(Value::Ptr(p)) => out.push_str(&p.to_string()),
                    None => {
                        return Err(RuntimeError::FormatString {
                            span,
                            detail: format!(
                                "conversion %{spec} reads a nonexistent argument off the stack"
                            ),
                        })
                    }
                },
                Some('s') => match rest.next() {
                    Some(Value::Ptr(a)) => {
                        let s = self.read_string(*a, span)?;
                        out.push_str(&s);
                    }
                    Some(Value::Int(_)) => {
                        return Err(RuntimeError::FormatString {
                            span,
                            detail: "%s applied to a non-pointer".to_owned(),
                        })
                    }
                    None => {
                        return Err(RuntimeError::FormatString {
                            span,
                            detail: "conversion %s reads a nonexistent argument off the stack"
                                .to_owned(),
                        })
                    }
                },
                Some('n') => {
                    // %n writes through a pointer read off the stack — the
                    // classic exploit payload.
                    return Err(RuntimeError::FormatString {
                        span,
                        detail: "%n write-back conversion in format string".to_owned(),
                    });
                }
                Some(other) => out.push(other),
                None => break,
            }
        }
        let len = out.len() as i64;
        self.outcome.stdout.push_str(&out);
        Ok(len)
    }

    fn lval_addr(&mut self, frame: &mut Frame, lv: &Lvalue) -> Result<u64, RuntimeError> {
        match &lv.kind {
            LvalKind::Var(name) => {
                if let Some(&(addr, _)) = frame.lookup(*name) {
                    Ok(addr)
                } else if let Some(&addr) = self.globals.get(name) {
                    Ok(addr)
                } else {
                    Err(RuntimeError::Unbound(*name, lv.span))
                }
            }
            LvalKind::Deref(e) => match self.eval(frame, e)? {
                Value::Ptr(0) => Err(RuntimeError::NullDeref(lv.span)),
                Value::Ptr(a) => Ok(a),
                Value::Int(0) => Err(RuntimeError::NullDeref(lv.span)),
                Value::Int(v) => Ok(v as u64),
            },
            LvalKind::Field(inner, f) => {
                let base = self.lval_addr(frame, inner)?;
                let tag = self.lval_struct_tag(frame, inner).ok_or_else(|| {
                    RuntimeError::Unsupported("field access on non-struct".to_owned(), lv.span)
                })?;
                let (off, _) = self.field_offset(tag, *f).ok_or_else(|| {
                    RuntimeError::Unsupported(format!("unknown field {f} of struct {tag}"), lv.span)
                })?;
                Ok(base.wrapping_add(off))
            }
        }
    }

    /// The struct tag of an l-value's static type, for field layout.
    fn lval_struct_tag(&self, frame: &Frame, lv: &Lvalue) -> Option<Symbol> {
        let ty = self.lval_type(frame, lv)?;
        match ty.ty {
            Ty::Base(BaseTy::Struct(tag)) => Some(tag),
            _ => None,
        }
    }

    fn lval_type(&self, frame: &Frame, lv: &Lvalue) -> Option<QualType> {
        match &lv.kind {
            LvalKind::Var(name) => frame
                .lookup(*name)
                .map(|(_, t)| t.clone())
                .or_else(|| self.global_types.get(name).cloned()),
            LvalKind::Deref(e) => self.expr_type(frame, e)?.pointee().cloned(),
            LvalKind::Field(inner, f) => {
                let tag = self.lval_struct_tag(frame, inner)?;
                self.field_offset(tag, *f).map(|(_, t)| t)
            }
        }
    }

    fn expr_type(&self, frame: &Frame, e: &Expr) -> Option<QualType> {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::SizeOf(_) => Some(QualType::int()),
            ExprKind::StrLit(_) => Some(QualType::char_ty().ptr_to()),
            ExprKind::Null => Some(QualType::void().ptr_to()),
            ExprKind::Lval(lv) => self.lval_type(frame, lv),
            ExprKind::AddrOf(lv) => Some(self.lval_type(frame, lv)?.ptr_to()),
            ExprKind::Unop(..) => Some(QualType::int()),
            ExprKind::Binop(BinOp::Add | BinOp::Sub, a, _) => {
                // Pointer arithmetic keeps the pointer's type (the logical
                // memory model).
                self.expr_type(frame, a)
            }
            ExprKind::Binop(..) => Some(QualType::int()),
            ExprKind::Cast(ty, _) => Some(ty.clone()),
        }
    }

    fn eval(&mut self, frame: &mut Frame, e: &Expr) -> Result<Value, RuntimeError> {
        self.tick()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::Null => Ok(Value::NULL),
            ExprKind::StrLit(s) => {
                let addr = self.alloc(s.len() as u64 + 1);
                for (i, b) in s.bytes().enumerate() {
                    self.mem
                        .insert(addr.wrapping_add(i as u64), Value::Int(i64::from(b)));
                }
                self.mem
                    .insert(addr.wrapping_add(s.len() as u64), Value::Int(0));
                Ok(Value::Ptr(addr))
            }
            ExprKind::SizeOf(ty) => Ok(Value::Int(self.size_of(ty) as i64)),
            ExprKind::Lval(lv) => {
                let addr = self.lval_addr(frame, lv)?;
                Ok(self.load(addr))
            }
            ExprKind::AddrOf(lv) => {
                let addr = self.lval_addr(frame, lv)?;
                Ok(Value::Ptr(addr))
            }
            ExprKind::Cast(_, inner) => self.eval(frame, inner),
            ExprKind::Unop(op, a) => {
                let v = self.eval(frame, a)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => x
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or(RuntimeError::ArithOverflow(e.span)),
                    (UnOp::Not, v) => Ok(Value::Int(i64::from(!v.is_truthy()))),
                    (UnOp::BitNot, Value::Int(x)) => Ok(Value::Int(!x)),
                    _ => Err(RuntimeError::Unsupported(
                        format!("unary {op} on pointer"),
                        e.span,
                    )),
                }
            }
            ExprKind::Binop(op, a, b) => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let va = self.eval(frame, a)?;
                    if !va.is_truthy() {
                        return Ok(Value::Int(0));
                    }
                    let vb = self.eval(frame, b)?;
                    return Ok(Value::Int(i64::from(vb.is_truthy())));
                }
                if *op == BinOp::Or {
                    let va = self.eval(frame, a)?;
                    if va.is_truthy() {
                        return Ok(Value::Int(1));
                    }
                    let vb = self.eval(frame, b)?;
                    return Ok(Value::Int(i64::from(vb.is_truthy())));
                }
                let va = self.eval(frame, a)?;
                let vb = self.eval(frame, b)?;
                self.binop(*op, va, vb, e.span)
            }
        }
    }

    fn binop(&self, op: BinOp, a: Value, b: Value, span: Span) -> Result<Value, RuntimeError> {
        use Value::{Int, Ptr};
        match (op, a, b) {
            // Int arithmetic is checked, not wrapping: the invariants the
            // typechecker relies on are proved over mathematical integers,
            // so leaving the representable range stops execution with
            // `ArithOverflow` rather than wrapping into values the static
            // derivation rules never covered. Pointer arithmetic below
            // stays wrapping — addresses live in a logical mod-2^64 space.
            (BinOp::Add, Int(x), Int(y)) => checked(x.checked_add(y), span),
            (BinOp::Add, Ptr(p), Int(i)) => Ok(Ptr(p.wrapping_add_signed(i))),
            (BinOp::Add, Int(i), Ptr(p)) => Ok(Ptr(p.wrapping_add_signed(i))),
            (BinOp::Sub, Int(x), Int(y)) => checked(x.checked_sub(y), span),
            // `i as u64` is the two's-complement image of `i`, so
            // `wrapping_sub` computes `p - i` mod 2^64 for every `i`
            // including `i64::MIN` (whose negation does not exist — the
            // old `wrapping_add_signed(-i)` panicked on it in debug
            // builds, found by `stqc fuzz`).
            (BinOp::Sub, Ptr(p), Int(i)) => Ok(Ptr(p.wrapping_sub(i as u64))),
            (BinOp::Sub, Ptr(p), Ptr(q)) => Ok(Int(p.wrapping_sub(q) as i64)),
            (BinOp::Mul, Int(x), Int(y)) => checked(x.checked_mul(y), span),
            (BinOp::Div, Int(_), Int(0)) => Err(RuntimeError::DivByZero(span)),
            // `checked_div`/`checked_rem` also catch `i64::MIN / -1`,
            // whose quotient is unrepresentable (a debug-build panic as
            // plain `/` — found by `stqc fuzz`).
            (BinOp::Div, Int(x), Int(y)) => checked(x.checked_div(y), span),
            (BinOp::Mod, Int(_), Int(0)) => Err(RuntimeError::DivByZero(span)),
            (BinOp::Mod, Int(x), Int(y)) => checked(x.checked_rem(y), span),
            (BinOp::Eq, x, y) => Ok(Int(i64::from(raw(x) == raw(y)))),
            (BinOp::Ne, x, y) => Ok(Int(i64::from(raw(x) != raw(y)))),
            (BinOp::Lt, x, y) => Ok(Int(i64::from(raw(x) < raw(y)))),
            (BinOp::Le, x, y) => Ok(Int(i64::from(raw(x) <= raw(y)))),
            (BinOp::Gt, x, y) => Ok(Int(i64::from(raw(x) > raw(y)))),
            (BinOp::Ge, x, y) => Ok(Int(i64::from(raw(x) >= raw(y)))),
            _ => Err(RuntimeError::Unsupported(
                format!("binary {op} on mixed operands"),
                span,
            )),
        }
    }
}

/// Maps a checked signed-arithmetic result to a value, with `None` (the
/// mathematical result is unrepresentable) becoming [`RuntimeError::ArithOverflow`].
fn checked(r: Option<i64>, span: Span) -> Result<Value, RuntimeError> {
    r.map(Value::Int).ok_or(RuntimeError::ArithOverflow(span))
}

/// Raw numeric view of a value for comparisons (pointers compare by
/// address; NULL is 0, so `p != NULL` works as expected).
fn raw(v: Value) -> i64 {
    match v {
        Value::Int(x) => x,
        Value::Ptr(a) => a as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn run(src: &str, entry: &str, args: &[Value]) -> Result<ExecOutcome, RuntimeError> {
        let p = parse_program(src, &["pos", "nonnull", "unique", "untainted"]).unwrap();
        run_entry(&p, entry, args, &NoChecks, InterpConfig::default())
    }

    #[test]
    fn arithmetic_and_locals() {
        let out = run(
            "int f(int x) { int y = x * 2; return y + 1; }",
            "f",
            &[Value::Int(20)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(41)));
    }

    #[test]
    fn while_loop_sums() {
        let out = run(
            "int sum(int n) { int s = 0; int i = 1; while (i <= n) { s += i; i++; } return s; }",
            "sum",
            &[Value::Int(10)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(55)));
    }

    #[test]
    fn for_loop_and_arrays() {
        let out = run(
            r#"
            int f(int n) {
                int* a = malloc(sizeof(int) * n);
                for (int i = 0; i < n; i++) a[i] = i * i;
                return a[3];
            }
            "#,
            "f",
            &[Value::Int(5)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(9)));
    }

    #[test]
    fn null_deref_is_fatal() {
        let e = run("int f() { int* p = NULL; return *p; }", "f", &[]).unwrap_err();
        assert!(matches!(e, RuntimeError::NullDeref(_)));
    }

    #[test]
    fn division_by_zero_is_fatal() {
        let e = run("int f(int x) { return 1 / x; }", "f", &[Value::Int(0)]).unwrap_err();
        assert!(matches!(e, RuntimeError::DivByZero(_)));
    }

    #[test]
    fn struct_fields_have_distinct_cells() {
        let out = run(
            r#"
            struct pair { int a; int b; };
            int f() {
                struct pair p;
                p.a = 1;
                p.b = 2;
                return p.a * 10 + p.b;
            }
            "#,
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(12)));
    }

    #[test]
    fn struct_through_pointer() {
        let out = run(
            r#"
            struct node { int value; struct node* next; };
            int f() {
                struct node* n = malloc(sizeof(struct node));
                n->value = 7;
                n->next = NULL;
                return n->value;
            }
            "#,
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(7)));
    }

    #[test]
    fn address_of_and_deref() {
        let out = run(
            "int f() { int x = 5; int* p = &x; *p = 9; return x; }",
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(9)));
    }

    #[test]
    fn function_calls_pass_values() {
        let out = run(
            r#"
            int square(int x) { return x * x; }
            int f(int a) { int s = square(a); return s + 1; }
            "#,
            "f",
            &[Value::Int(6)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(37)));
    }

    #[test]
    fn printf_writes_stdout() {
        let out = run(
            r#"
            int printf(char * untainted fmt, ...);
            int f() { printf("x=%d s=%s\n", 42, "hi"); return 0; }
            "#,
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.stdout, "x=42 s=hi\n");
        assert_eq!(out.printf_calls, 1);
    }

    #[test]
    fn format_string_vulnerability_detected() {
        // printf(buf) where buf contains a specifier but no argument: the
        // bftpd-style exploit.
        let e = run(
            r#"
            int printf(char * untainted fmt, ...);
            int f() {
                char* buf = "%s%s";
                printf(buf);
                return 0;
            }
            "#,
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::FormatString { .. }));
    }

    #[test]
    fn percent_n_is_always_fatal() {
        let e = run(
            r#"
            int printf(char * untainted fmt, ...);
            int f() { printf("%n", 1); return 0; }
            "#,
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::FormatString { .. }));
    }

    #[test]
    fn runtime_check_failure() {
        use crate::ast::{InstrKind, StmtKind};
        // Build f() { __check_pos(0); } directly.
        let mut p = Program::new();
        p.funcs.push(FuncDef {
            name: Symbol::intern("f"),
            sig: FuncSig {
                params: vec![],
                ret: QualType::void(),
                varargs: false,
            },
            body: vec![Stmt::new(StmtKind::Instr(Instr::new(
                InstrKind::RuntimeCheck(Symbol::intern("pos"), Expr::int(0)),
            )))],
            span: Span::DUMMY,
        });
        struct PosCheck;
        impl QualChecker for PosCheck {
            fn holds(&self, _q: Symbol, v: Value) -> bool {
                matches!(v, Value::Int(x) if x > 0)
            }
        }
        let e = run_entry(&p, "f", &[], &PosCheck, InterpConfig::default()).unwrap_err();
        assert!(matches!(e, RuntimeError::CheckFailed { .. }));
    }

    #[test]
    fn runtime_check_pass_is_counted() {
        let mut p = Program::new();
        p.funcs.push(FuncDef {
            name: Symbol::intern("f"),
            sig: FuncSig {
                params: vec![],
                ret: QualType::void(),
                varargs: false,
            },
            body: vec![Stmt::new(StmtKind::Instr(Instr::new(
                InstrKind::RuntimeCheck(Symbol::intern("pos"), Expr::int(3)),
            )))],
            span: Span::DUMMY,
        });
        struct PosCheck;
        impl QualChecker for PosCheck {
            fn holds(&self, _q: Symbol, v: Value) -> bool {
                matches!(v, Value::Int(x) if x > 0)
            }
        }
        let out = run_entry(&p, "f", &[], &PosCheck, InterpConfig::default()).unwrap();
        assert_eq!(out.checks_passed, 1);
    }

    #[test]
    fn globals_persist_across_calls() {
        let out = run(
            r#"
            int counter = 0;
            void bump() { counter += 1; }
            int f() { bump(); bump(); bump(); return counter; }
            "#,
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(3)));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let p = parse_program("void f() { while (1) { } }", &[]).unwrap();
        let config = InterpConfig {
            max_steps: 1000,
            ..InterpConfig::default()
        };
        let e = run_entry(&p, "f", &[], &NoChecks, config).unwrap_err();
        assert_eq!(e, RuntimeError::OutOfFuel);
    }

    #[test]
    fn runaway_recursion_is_a_runtime_error_not_a_host_crash() {
        let p = parse_program("int f(int x) { int r = f(x + 1); return r; }", &[]).unwrap();
        let e = run_entry(&p, "f", &[Value::Int(0)], &NoChecks, InterpConfig::default())
            .unwrap_err();
        assert_eq!(e, RuntimeError::StackOverflow);
    }

    #[test]
    fn ptr_minus_int_min_wraps_instead_of_panicking() {
        // `p - i64::MIN`: negating the subtrahend does not exist in i64,
        // so the subtraction must wrap in u64 space. Found by `stqc fuzz`.
        let out = run(
            "int* f() {
                 int x = 7;
                 int* p = &x;
                 int* q = p - (0 - 9223372036854775807 - 1);
                 return q;
             }",
            "f",
            &[],
        )
        .unwrap();
        let Some(Value::Ptr(q)) = out.ret else {
            panic!("expected a pointer, got {:?}", out.ret)
        };
        // p - MIN  ==  p + 2^63 (mod 2^64).
        assert_eq!(q & (1 << 63), 1 << 63);
    }

    #[test]
    fn ptr_minus_ptr_wraps_instead_of_overflowing() {
        // The difference of two addresses can exceed i64 when computed as
        // `p as i64 - q as i64`; it must be taken mod 2^64 first. Found
        // by `stqc fuzz`.
        let out = run(
            "int f() {
                 int x = 1;
                 int* a = &x;
                 int* b = a + 9223372036854775807;
                 int d = a - b;
                 return d;
             }",
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(i64::MIN + 1)));
    }

    #[test]
    fn int_overflow_is_a_runtime_error_not_a_silent_wrap() {
        // `pos * pos` is statically `pos`; a wrapped product can be
        // negative, which would falsify the proven invariant at run time.
        // Execution must stop at the overflow instead. Found by `stqc
        // fuzz`'s soundness oracle.
        let e = run(
            "int f(int x) { int y = x * x; return y; }",
            "f",
            &[Value::Int(4_000_000_000)],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::ArithOverflow(_)), "{e}");
    }

    #[test]
    fn int_min_negation_and_division_overflow_are_runtime_errors() {
        // `i64::MIN / -1` and `-i64::MIN` are unrepresentable; as plain
        // `/` and `-` they panic in debug builds. Found by `stqc fuzz`.
        for src in [
            "int f(int x) { int y = x / (0 - 1); return y; }",
            "int f(int x) { int y = x % (0 - 1); return y; }",
            "int f(int x) { int y = -x; return y; }",
        ] {
            let e = run(src, "f", &[Value::Int(i64::MIN)]).unwrap_err();
            assert!(matches!(e, RuntimeError::ArithOverflow(_)), "{src}: {e}");
        }
    }

    #[test]
    fn huge_malloc_saturates_the_address_space() {
        // Two back-to-back huge allocations would overflow the bump
        // allocator's counter in debug builds; saturation keeps execution
        // alive (fresh allocations may alias at the top of the address
        // space, which the logical memory model tolerates).
        let out = run(
            "int f() {
                 int* a = malloc(9223372036854775807);
                 int* b = malloc(9223372036854775807);
                 int* c = malloc(8);
                 if (a == b) { return 0 - 1; }
                 return 1;
             }",
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(1)));
    }

    #[test]
    fn self_referential_struct_size_is_finite() {
        // A struct containing itself by value has no finite layout; the
        // bounded size computation must not recurse forever.
        let out = run(
            "struct s { struct s inner; int v; };
             int f() { return sizeof(struct s); }",
            "f",
            &[],
        )
        .unwrap();
        assert!(matches!(out.ret, Some(Value::Int(n)) if n > 0));
    }

    #[test]
    fn unknown_function_errors() {
        let e = run("void f() { mystery(); }", "f", &[]).unwrap_err();
        assert!(matches!(e, RuntimeError::UnknownFunction(..)));
    }

    #[test]
    fn missing_entry_errors() {
        let e = run("void f() { }", "g", &[]).unwrap_err();
        assert!(matches!(e, RuntimeError::NoEntry(_)));
    }

    #[test]
    fn short_circuit_avoids_division() {
        let out = run(
            "int f(int x) { if (x != 0 && 10 / x > 1) return 1; return 0; }",
            "f",
            &[Value::Int(0)],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Value::Int(0)));
    }
}
