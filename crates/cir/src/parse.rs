//! Recursive-descent parser for the C subset.
//!
//! The parser plays the role of CIL's front end: it produces the
//! normalized intermediate representation directly —
//!
//! * calls and allocations never appear inside expressions; an initializer
//!   like `int* p = malloc(n);` becomes a declaration followed by an
//!   [`InstrKind::Alloc`] instruction,
//! * `a[i]` is normalized to `*(a + i)` and `e->f` to `(*e).f`,
//! * `i++`, `i += e` etc. are desugared to plain assignments,
//! * `for` loops are desugared to `while` loops.
//!
//! Qualifier annotations are postfix identifiers drawn from a caller-
//! provided set of known qualifier names (standing in for the paper's
//! gcc-attribute macros): `int pos x`, `char * untainted fmt`.

use crate::ast::*;
use crate::lex::{lex, Tok, Token};
use std::collections::HashSet;
use std::fmt;
use stq_util::{Span, Symbol};

/// A parse failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lex::LexError> for ParseError {
    fn from(e: crate::lex::LexError) -> ParseError {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parses a translation unit.
///
/// `qualifiers` lists the user-defined qualifier names the parser should
/// recognize as postfix type annotations.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// use stq_cir::parse::parse_program;
///
/// let src = r#"
///     int pos gcd(int pos n, int pos m);
///     int pos lcm(int pos a, int pos b) {
///         int pos d = gcd(a, b);
///         int pos prod = a * b;
///         return (int pos) (prod / d);
///     }
/// "#;
/// let program = parse_program(src, &["pos"]).unwrap();
/// assert_eq!(program.funcs.len(), 1);
/// assert_eq!(program.protos.len(), 1);
/// ```
pub fn parse_program(src: &str, qualifiers: &[&str]) -> PResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        quals: qualifiers.iter().map(|q| Symbol::intern(q)).collect(),
        resilient: false,
        errors: Vec::new(),
    };
    p.program()
}

/// Error-resilient variant of [`parse_program`]: instead of stopping at
/// the first syntax error, records it, resynchronizes — inside a block at
/// the next `;` or the enclosing `}`, at top level at the next `;` or
/// balanced `}` — and keeps parsing. Returns the partial [`Program`] (so
/// later declarations still typecheck) together with every diagnostic.
///
/// An empty error vector means exactly the program [`parse_program`]
/// would have produced. A lex error is not recoverable (there is no
/// token stream to sync on) and yields an empty program.
pub fn parse_program_resilient(src: &str, qualifiers: &[&str]) -> (Program, Vec<ParseError>) {
    let toks = match lex(src) {
        Ok(toks) => toks,
        Err(e) => return (Program::new(), vec![e.into()]),
    };
    let mut p = Parser {
        toks,
        pos: 0,
        quals: qualifiers.iter().map(|q| Symbol::intern(q)).collect(),
        resilient: true,
        errors: Vec::new(),
    };
    let prog = p.program_resilient();
    (prog, p.errors)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    quals: HashSet<Symbol>,
    /// In resilient mode statement-level errors are recorded in
    /// `errors` and the parser resynchronizes instead of failing.
    resilient: bool,
    errors: Vec<ParseError>,
}

const TYPE_KEYWORDS: [&str; 4] = ["int", "char", "void", "struct"];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            span: self.span(),
        })
    }

    fn expect(&mut self, tok: &Tok) -> PResult<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> PResult<Symbol> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.as_str() == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn type_starts_at(&self, n: usize) -> bool {
        matches!(self.peek_at(n), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    // ----- types -----

    fn qual_list(&mut self, ty: &mut QualType) {
        while let Tok::Ident(s) = self.peek() {
            if self.quals.contains(s) {
                ty.quals.insert(*s);
                self.bump();
            } else {
                break;
            }
        }
    }

    fn parse_type(&mut self) -> PResult<QualType> {
        let base = match self.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "int" => {
                    self.bump();
                    BaseTy::Int
                }
                "char" => {
                    self.bump();
                    BaseTy::Char
                }
                "void" => {
                    self.bump();
                    BaseTy::Void
                }
                "struct" => {
                    self.bump();
                    let tag = self.ident()?;
                    BaseTy::Struct(tag)
                }
                other => return self.err(format!("expected type, found `{other}`")),
            },
            other => return self.err(format!("expected type, found `{other}`")),
        };
        let mut ty = QualType::base(base);
        self.qual_list(&mut ty);
        while self.peek() == &Tok::Star {
            self.bump();
            ty = ty.ptr_to();
            self.qual_list(&mut ty);
        }
        Ok(ty)
    }

    // ----- top level -----

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program::new();
        while self.peek() != &Tok::Eof {
            self.top_item(&mut prog)?;
        }
        Ok(prog)
    }

    fn program_resilient(&mut self) -> Program {
        let mut prog = Program::new();
        while self.peek() != &Tok::Eof {
            let before = self.pos;
            if let Err(e) = self.top_item(&mut prog) {
                self.errors.push(e);
                self.recover_top_level();
            }
            // Progress guarantee: a failure that consumed nothing (and a
            // recovery that found no sync token) must not loop forever.
            if self.pos == before {
                self.force_bump();
            }
        }
        prog
    }

    /// One top-level item: a struct definition, a global, a prototype,
    /// or a function definition.
    fn top_item(&mut self, prog: &mut Program) -> PResult<()> {
        if self.at_ident("struct") && matches!(self.peek_at(2), Tok::LBrace) {
            prog.structs.push(self.struct_def()?);
            return Ok(());
        }
        let start = self.span();
        let ty = self.parse_type()?;
        let name = self.ident()?;
        if self.peek() == &Tok::LParen {
            let (sig, body) = self.func_rest(ty)?;
            let span = start.to(self.prev_span());
            match body {
                None => prog.protos.push(FuncProto { name, sig, span }),
                Some(body) => prog.funcs.push(FuncDef {
                    name,
                    sig,
                    body,
                    span,
                }),
            }
        } else {
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            prog.globals.push(GlobalDecl {
                name,
                ty,
                init,
                span: start.to(self.prev_span()),
            });
        }
        Ok(())
    }

    // ----- error recovery -----

    /// Advances one token if any remain before the `Eof` sentinel
    /// (unlike [`Parser::bump`], which parks on the last token, this is
    /// the progress guarantee for the recovery loops).
    fn force_bump(&mut self) {
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
    }

    /// After a top-level error: skip to just past the next `;` at brace
    /// depth zero, or just past the `}` closing the brace nest we are
    /// inside (a broken function body), whichever comes first.
    fn recover_top_level(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth == 0 => {
                    self.force_bump();
                    return;
                }
                Tok::LBrace => {
                    depth += 1;
                    self.force_bump();
                }
                Tok::RBrace => {
                    self.force_bump();
                    if depth <= 1 {
                        // Closed the body we were inside (or a stray `}`).
                        return;
                    }
                    depth -= 1;
                }
                _ => self.force_bump(),
            }
        }
    }

    /// After a statement-level error: skip to just past the next `;` at
    /// nesting depth zero, or to (not past) the `}` that closes the
    /// enclosing block, so the block loop can finish normally.
    fn recover_in_block(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth == 0 => {
                    self.force_bump();
                    return;
                }
                Tok::LBrace => {
                    depth += 1;
                    self.force_bump();
                }
                Tok::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.force_bump();
                }
                _ => self.force_bump(),
            }
        }
    }

    fn struct_def(&mut self) -> PResult<StructDef> {
        let start = self.span();
        self.expect(&Tok::Ident(Symbol::intern("struct")))?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            let fty = self.parse_type()?;
            let fname = self.ident()?;
            self.expect(&Tok::Semi)?;
            fields.push((fname, fty));
        }
        self.expect(&Tok::RBrace)?;
        self.expect(&Tok::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn func_rest(&mut self, ret: QualType) -> PResult<(FuncSig, Option<Vec<Stmt>>)> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        let mut varargs = false;
        if self.peek() != &Tok::RParen {
            // `(void)` means no parameters.
            if self.at_ident("void") && self.peek_at(1) == &Tok::RParen {
                self.bump();
            } else {
                loop {
                    if self.peek() == &Tok::Ellipsis {
                        self.bump();
                        varargs = true;
                        break;
                    }
                    let pty = self.parse_type()?;
                    let pname = self.ident()?;
                    params.push((pname, pty));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let sig = FuncSig {
            params,
            ret,
            varargs,
        };
        if self.peek() == &Tok::Semi {
            self.bump();
            Ok((sig, None))
        } else {
            let body = self.block_stmts()?;
            Ok((sig, Some(body)))
        }
    }

    // ----- statements -----

    fn block_stmts(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return self.err("unexpected end of input inside block");
            }
            let before = self.pos;
            match self.stmt_into(&mut out) {
                Ok(()) => {}
                Err(e) if self.resilient => {
                    self.errors.push(e);
                    self.recover_in_block();
                    if self.pos == before && self.peek() != &Tok::RBrace {
                        self.force_bump();
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn block_as_stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        let stmts = self.block_stmts()?;
        Ok(Stmt {
            kind: StmtKind::Block(stmts),
            span: start.to(self.prev_span()),
        })
    }

    /// Parses one source statement, which can expand to several IR
    /// statements (e.g. `int* p = malloc(n);`).
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let start = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                let b = self.block_as_stmt()?;
                out.push(b);
                Ok(())
            }
            Tok::Semi => {
                self.bump();
                Ok(())
            }
            Tok::Ident(s) if s.as_str() == "if" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.sub_stmt()?;
                let els = if self.eat_ident("else") {
                    Some(Box::new(self.sub_stmt()?))
                } else {
                    None
                };
                out.push(Stmt {
                    kind: StmtKind::If(cond, Box::new(then), els),
                    span: start.to(self.prev_span()),
                });
                Ok(())
            }
            Tok::Ident(s) if s.as_str() == "while" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.sub_stmt()?;
                out.push(Stmt {
                    kind: StmtKind::While(cond, Box::new(body)),
                    span: start.to(self.prev_span()),
                });
                Ok(())
            }
            Tok::Ident(s) if s.as_str() == "for" => self.for_stmt(out, start),
            Tok::Ident(s) if s.as_str() == "return" => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(self.prev_span()),
                });
                Ok(())
            }
            _ if self.at_type_start() => {
                self.local_decl(out)?;
                self.expect(&Tok::Semi)?;
                Ok(())
            }
            _ => {
                self.expr_stmt(out)?;
                self.expect(&Tok::Semi)?;
                Ok(())
            }
        }
    }

    fn sub_stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        let mut tmp = Vec::new();
        self.stmt_into(&mut tmp)?;
        Ok(match tmp.len() {
            1 => tmp.pop().expect("len checked"),
            _ => Stmt {
                kind: StmtKind::Block(tmp),
                span: start.to(self.prev_span()),
            },
        })
    }

    fn for_stmt(&mut self, out: &mut Vec<Stmt>, start: Span) -> PResult<()> {
        self.bump(); // for
        self.expect(&Tok::LParen)?;
        let mut init = Vec::new();
        if self.peek() != &Tok::Semi {
            if self.at_type_start() {
                self.local_decl(&mut init)?;
            } else {
                self.expr_stmt(&mut init)?;
            }
        }
        self.expect(&Tok::Semi)?;
        let cond = if self.peek() == &Tok::Semi {
            Expr::int(1)
        } else {
            self.parse_expr()?
        };
        self.expect(&Tok::Semi)?;
        let mut step = Vec::new();
        if self.peek() != &Tok::RParen {
            self.expr_stmt(&mut step)?;
        }
        self.expect(&Tok::RParen)?;
        let body = self.sub_stmt()?;
        let mut loop_body = vec![body];
        loop_body.extend(step);
        let whole = Stmt {
            kind: StmtKind::While(cond, Box::new(Stmt::new(StmtKind::Block(loop_body)))),
            span: start.to(self.prev_span()),
        };
        init.push(whole);
        out.push(Stmt {
            kind: StmtKind::Block(init),
            span: start.to(self.prev_span()),
        });
        Ok(())
    }

    fn local_decl(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let start = self.span();
        let ty = self.parse_type()?;
        let name = self.ident()?;
        let mut decl = LocalDecl {
            name,
            ty,
            init: None,
            span: start.to(self.prev_span()),
        };
        if self.peek() == &Tok::Assign {
            self.bump();
            let lv = Lvalue {
                kind: LvalKind::Var(name),
                span: decl.span,
            };
            match self.parse_rhs()? {
                Rhs::Expr(e) => {
                    decl.init = Some(e);
                    decl.span = start.to(self.prev_span());
                    out.push(Stmt {
                        kind: StmtKind::Decl(decl),
                        span: start.to(self.prev_span()),
                    });
                    return Ok(());
                }
                Rhs::Call(f, args) => {
                    out.push(Stmt {
                        kind: StmtKind::Decl(decl),
                        span: start.to(self.prev_span()),
                    });
                    out.push(Stmt {
                        kind: StmtKind::Instr(Instr {
                            kind: InstrKind::Call(Some(lv), f, args),
                            span: start.to(self.prev_span()),
                        }),
                        span: start.to(self.prev_span()),
                    });
                    return Ok(());
                }
                Rhs::Alloc(size) => {
                    out.push(Stmt {
                        kind: StmtKind::Decl(decl),
                        span: start.to(self.prev_span()),
                    });
                    out.push(Stmt {
                        kind: StmtKind::Instr(Instr {
                            kind: InstrKind::Alloc(lv, size),
                            span: start.to(self.prev_span()),
                        }),
                        span: start.to(self.prev_span()),
                    });
                    return Ok(());
                }
            }
        }
        out.push(Stmt {
            kind: StmtKind::Decl(decl),
            span: start.to(self.prev_span()),
        });
        Ok(())
    }

    /// Expression statement: a call, an assignment, or an
    /// increment/decrement desugaring.
    fn expr_stmt(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let start = self.span();
        // Bare call: `f(args);`
        if let Tok::Ident(f) = self.peek().clone() {
            if self.peek_at(1) == &Tok::LParen && !TYPE_KEYWORDS.contains(&f.as_str()) {
                self.bump();
                let args = self.call_args()?;
                let span = start.to(self.prev_span());
                if f.as_str() == "malloc" {
                    return self.err("discarded malloc result");
                }
                out.push(Stmt {
                    kind: StmtKind::Instr(Instr {
                        kind: InstrKind::Call(None, f, args),
                        span,
                    }),
                    span,
                });
                return Ok(());
            }
        }
        // Assignment target.
        let target = self.parse_unary()?;
        let Some(lv) = target.as_lval().cloned() else {
            return self.err("expected assignable l-value");
        };
        let lv_expr = Expr {
            kind: ExprKind::Lval(Box::new(lv.clone())),
            span: target.span,
        };
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                match self.parse_rhs()? {
                    Rhs::Expr(e) => out.push(Stmt {
                        kind: StmtKind::Instr(Instr {
                            kind: InstrKind::Set(lv, e),
                            span: start.to(self.prev_span()),
                        }),
                        span: start.to(self.prev_span()),
                    }),
                    Rhs::Call(f, args) => out.push(Stmt {
                        kind: StmtKind::Instr(Instr {
                            kind: InstrKind::Call(Some(lv), f, args),
                            span: start.to(self.prev_span()),
                        }),
                        span: start.to(self.prev_span()),
                    }),
                    Rhs::Alloc(size) => out.push(Stmt {
                        kind: StmtKind::Instr(Instr {
                            kind: InstrKind::Alloc(lv, size),
                            span: start.to(self.prev_span()),
                        }),
                        span: start.to(self.prev_span()),
                    }),
                }
                Ok(())
            }
            Tok::PlusPlus | Tok::PlusEq | Tok::MinusMinus | Tok::MinusEq => {
                let op_tok = self.bump();
                let (op, rhs) = match op_tok {
                    Tok::PlusPlus => (BinOp::Add, Expr::int(1)),
                    Tok::MinusMinus => (BinOp::Sub, Expr::int(1)),
                    Tok::PlusEq => (BinOp::Add, self.parse_expr()?),
                    Tok::MinusEq => (BinOp::Sub, self.parse_expr()?),
                    _ => unreachable!("matched above"),
                };
                let value = Expr::binop(op, lv_expr, rhs);
                out.push(Stmt {
                    kind: StmtKind::Instr(Instr {
                        kind: InstrKind::Set(lv, value),
                        span: start.to(self.prev_span()),
                    }),
                    span: start.to(self.prev_span()),
                });
                Ok(())
            }
            other => self.err(format!("expected assignment operator, found `{other}`")),
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    // ----- right-hand sides -----

    fn parse_rhs(&mut self) -> PResult<Rhs> {
        // A cast followed by a call/malloc: `(int*) malloc(n)`. Casts on
        // allocation results are ignored for pattern matching (paper
        // §2.2.1), and CIL's normalization drops them from the instruction.
        if self.peek() == &Tok::LParen && self.type_starts_at(1) {
            let save = self.pos;
            self.bump();
            let ty = self.parse_type()?;
            self.expect(&Tok::RParen)?;
            match self.parse_rhs()? {
                Rhs::Expr(e) => {
                    let span = e.span;
                    return Ok(Rhs::Expr(Expr {
                        kind: ExprKind::Cast(ty, Box::new(e)),
                        span,
                    }));
                }
                other => {
                    let _ = save;
                    return Ok(other);
                }
            }
        }
        if let Tok::Ident(f) = self.peek().clone() {
            if self.peek_at(1) == &Tok::LParen
                && !TYPE_KEYWORDS.contains(&f.as_str())
                && f.as_str() != "sizeof"
            {
                self.bump();
                let args = self.call_args()?;
                if f.as_str() == "malloc" {
                    let size = args.into_iter().next().unwrap_or_else(|| Expr::int(1));
                    return Ok(Rhs::Alloc(size));
                }
                return Ok(Rhs::Call(f, args));
            }
        }
        Ok(Rhs::Expr(self.parse_expr()?))
    }

    // ----- expressions -----

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.parse_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binop(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.parse_cmp()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binop(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> PResult<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    fn parse_add(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unop(UnOp::Neg, Box::new(e)),
                    span,
                })
            }
            Tok::Not => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unop(UnOp::Not, Box::new(e)),
                    span,
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unop(UnOp::BitNot, Box::new(e)),
                    span,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Lval(Box::new(Lvalue {
                        kind: LvalKind::Deref(e),
                        span,
                    })),
                    span,
                })
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                match e.as_lval() {
                    Some(lv) => Ok(Expr {
                        kind: ExprKind::AddrOf(Box::new(lv.clone())),
                        span,
                    }),
                    None => self.err("`&` requires an l-value operand"),
                }
            }
            Tok::LParen if self.type_starts_at(1) => {
                // Cast.
                self.bump();
                let ty = self.parse_type()?;
                self.expect(&Tok::RParen)?;
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Cast(ty, Box::new(e)),
                    span,
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek().clone() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    // a[i] ≡ *(a + i)
                    let sum = Expr {
                        kind: ExprKind::Binop(BinOp::Add, Box::new(e), Box::new(idx)),
                        span,
                    };
                    e = Expr {
                        kind: ExprKind::Lval(Box::new(Lvalue {
                            kind: LvalKind::Deref(sum),
                            span,
                        })),
                        span,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    let span = e.span.to(self.prev_span());
                    let Some(lv) = e.as_lval().cloned() else {
                        return self.err("`.` requires an l-value operand");
                    };
                    e = Expr {
                        kind: ExprKind::Lval(Box::new(Lvalue {
                            kind: LvalKind::Field(Box::new(lv), f),
                            span,
                        })),
                        span,
                    };
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    let span = e.span.to(self.prev_span());
                    // e->f ≡ (*e).f
                    let deref = Lvalue {
                        kind: LvalKind::Deref(e),
                        span,
                    };
                    e = Expr {
                        kind: ExprKind::Lval(Box::new(Lvalue {
                            kind: LvalKind::Field(Box::new(deref), f),
                            span,
                        })),
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: start,
                })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::StrLit(s),
                    span: start,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) if s.as_str() == "NULL" => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    span: start,
                })
            }
            Tok::Ident(s) if s.as_str() == "sizeof" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let ty = self.parse_type()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr {
                    kind: ExprKind::SizeOf(ty),
                    span: start.to(self.prev_span()),
                })
            }
            Tok::Ident(s) => {
                if self.peek_at(1) == &Tok::LParen {
                    return self.err(format!(
                        "call to `{s}` in expression position; calls are instructions in CIR"
                    ));
                }
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Lval(Box::new(Lvalue {
                        kind: LvalKind::Var(s),
                        span: start,
                    })),
                    span: start,
                })
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

enum Rhs {
    Expr(Expr),
    Call(Symbol, Vec<Expr>),
    Alloc(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(
            src,
            &["pos", "neg", "nonzero", "nonnull", "unique", "untainted"],
        )
        .unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    #[test]
    fn lcm_example_from_the_paper() {
        let p = parse(
            r#"
            int pos gcd(int pos n, int pos m);
            int pos lcm(int pos a, int pos b) {
                int pos d = gcd(a, b);
                int pos prod = a * b;
                return (int pos) (prod / d);
            }
            "#,
        );
        assert_eq!(p.protos.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        let lcm = &p.funcs[0];
        assert_eq!(lcm.sig.params.len(), 2);
        assert!(lcm.sig.ret.has_qual(Symbol::intern("pos")));
        // Body: Decl d, Call d=gcd, Decl prod (with init), Return.
        assert_eq!(lcm.body.len(), 4);
        assert!(matches!(lcm.body[0].kind, StmtKind::Decl(_)));
        assert!(matches!(
            lcm.body[1].kind,
            StmtKind::Instr(Instr {
                kind: InstrKind::Call(Some(_), _, _),
                ..
            })
        ));
        match &lcm.body[3].kind {
            StmtKind::Return(Some(e)) => {
                assert!(matches!(e.kind, ExprKind::Cast(_, _)));
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn make_array_example_from_the_paper() {
        let p = parse(
            r#"
            int * unique array;
            void make_array(int n) {
                array = (int*)malloc(sizeof(int) * n);
                for (int i = 0; i < n; i++)
                    array[i] = i;
            }
            "#,
        );
        assert_eq!(p.globals.len(), 1);
        assert!(p.globals[0].ty.has_qual(Symbol::intern("unique")));
        let f = &p.funcs[0];
        // First statement: Alloc (the cast is dropped).
        assert!(matches!(
            f.body[0].kind,
            StmtKind::Instr(Instr {
                kind: InstrKind::Alloc(_, _),
                ..
            })
        ));
        // Then the desugared for loop.
        match &f.body[1].kind {
            StmtKind::Block(stmts) => {
                assert!(matches!(stmts[0].kind, StmtKind::Decl(_)));
                assert!(matches!(stmts.last().unwrap().kind, StmtKind::While(_, _)));
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn array_indexing_normalizes_to_deref() {
        let p = parse("void f(int* a, int i) { a[i] = 0; }");
        match &p.funcs[0].body[0].kind {
            StmtKind::Instr(Instr {
                kind: InstrKind::Set(lv, _),
                ..
            }) => match &lv.kind {
                LvalKind::Deref(e) => {
                    assert!(matches!(e.kind, ExprKind::Binop(BinOp::Add, _, _)));
                }
                other => panic!("expected deref, got {other:?}"),
            },
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn arrow_normalizes_to_field_of_deref() {
        let p = parse(
            r#"
            struct dirent { char* d_name; };
            void f(struct dirent* entry, char* out) {
                out = entry->d_name;
            }
            "#,
        );
        match &p.funcs[0].body[0].kind {
            StmtKind::Instr(Instr {
                kind: InstrKind::Set(_, e),
                ..
            }) => match &e.kind {
                ExprKind::Lval(lv) => match &lv.kind {
                    LvalKind::Field(inner, f) => {
                        assert_eq!(f.as_str(), "d_name");
                        assert!(matches!(inner.kind, LvalKind::Deref(_)));
                    }
                    other => panic!("expected field, got {other:?}"),
                },
                other => panic!("expected lval, got {other:?}"),
            },
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn nested_pointer_qualifiers() {
        let p = parse("int pos * nonnull g;");
        let ty = &p.globals[0].ty;
        assert!(ty.has_qual(Symbol::intern("nonnull")));
        assert!(ty.pointee().unwrap().has_qual(Symbol::intern("pos")));
    }

    #[test]
    fn unknown_identifier_is_not_a_qualifier() {
        // `pos` not registered: `int pos x;` parses `pos` as the variable
        // name and errors on `x`.
        let r = parse_program("int pos x;", &[]);
        assert!(r.is_err());
    }

    #[test]
    fn if_else_chain() {
        let p = parse(
            "int sign(int x) { if (x > 0) return 1; else if (x < 0) return -1; else return 0; }",
        );
        match &p.funcs[0].body[0].kind {
            StmtKind::If(_, _, Some(els)) => {
                assert!(matches!(els.kind, StmtKind::If(_, _, Some(_))));
            }
            other => panic!("expected if-else, got {other:?}"),
        }
    }

    #[test]
    fn while_with_null_test() {
        let p = parse("void f(int* t) { while (t != NULL) { t = NULL; } }");
        match &p.funcs[0].body[0].kind {
            StmtKind::While(cond, _) => {
                assert!(matches!(cond.kind, ExprKind::Binop(BinOp::Ne, _, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn increment_desugars() {
        let p = parse("void f(int i) { i++; i += 2; i--; i -= 3; }");
        for stmt in &p.funcs[0].body {
            match &stmt.kind {
                StmtKind::Instr(Instr {
                    kind: InstrKind::Set(lv, e),
                    ..
                }) => {
                    assert_eq!(lv.as_var(), Some(Symbol::intern("i")));
                    assert!(matches!(
                        e.kind,
                        ExprKind::Binop(BinOp::Add | BinOp::Sub, _, _)
                    ));
                }
                other => panic!("expected set, got {other:?}"),
            }
        }
    }

    #[test]
    fn varargs_prototype() {
        let p = parse("int printf(char * untainted fmt, ...);");
        assert!(p.protos[0].sig.varargs);
        assert!(p.protos[0].sig.params[0]
            .1
            .has_qual(Symbol::intern("untainted")));
    }

    #[test]
    fn call_in_expression_is_rejected() {
        let r = parse_program("void f() { int x = 1 + g(); }", &[]);
        assert!(r.is_err());
        assert!(r.unwrap_err().message.contains("instruction"));
    }

    #[test]
    fn address_of_rvalue_is_rejected() {
        let r = parse_program("void f() { int* p = &3; }", &[]);
        assert!(r.is_err());
    }

    #[test]
    fn cast_on_string_literal() {
        let p = parse(
            r#"
            int printf(char * untainted fmt, ...);
            void f(char* buf) {
                char * untainted fmt = (char * untainted) "%s";
                printf(fmt, buf);
            }
            "#,
        );
        match &p.funcs[0].body[0].kind {
            StmtKind::Decl(d) => {
                let init = d.init.as_ref().unwrap();
                assert!(matches!(init.kind, ExprKind::Cast(_, _)));
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn global_with_initializer() {
        let p = parse("int pos limit = 100;");
        assert_eq!(
            p.globals[0].init,
            Some(Expr {
                kind: ExprKind::IntLit(100),
                span: p.globals[0].init.as_ref().unwrap().span,
            })
        );
    }

    #[test]
    fn void_paramlist() {
        let p = parse("int f(void) { return 0; }");
        assert!(p.funcs[0].sig.params.is_empty());
    }

    #[test]
    fn empty_statement_is_allowed() {
        let p = parse("void f() { ; ; }");
        assert!(p.funcs[0].body.is_empty());
    }

    #[test]
    fn discarded_malloc_is_rejected() {
        assert!(parse_program("void f() { malloc(4); }", &[]).is_err());
    }

    #[test]
    fn resilient_parse_of_clean_source_matches_strict() {
        let src = "int g = 1;
            int pos dbl(int pos x) { return (int pos)(x * 2); }
            void h();";
        let strict = parse_program(src, &["pos"]).unwrap();
        let (prog, errors) = parse_program_resilient(src, &["pos"]);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(prog.globals.len(), strict.globals.len());
        assert_eq!(prog.funcs.len(), strict.funcs.len());
        assert_eq!(prog.protos.len(), strict.protos.len());
    }

    #[test]
    fn resilient_parse_recovers_at_semicolons_inside_a_block() {
        // The middle statement is broken; its neighbours must survive.
        let src = "int f() {
                int a = 1;
                int b = * ;
                int c = 2;
                return c;
            }";
        assert!(parse_program(src, &[]).is_err());
        let (prog, errors) = parse_program_resilient(src, &[]);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(prog.funcs.len(), 1);
        let body = &prog.funcs[0].body;
        // a's decl+init, c's decl+init, return — the broken b dropped.
        assert!(body.len() >= 3, "{body:?}");
    }

    #[test]
    fn resilient_parse_recovers_past_a_broken_function() {
        let src = "int broken(int x { return x; }
            int fine(int y) { return y; }";
        let (prog, errors) = parse_program_resilient(src, &[]);
        assert!(!errors.is_empty());
        assert_eq!(prog.funcs.len(), 1, "{prog:?}");
        assert_eq!(prog.funcs[0].name.as_str(), "fine");
    }

    #[test]
    fn resilient_parse_recovers_past_a_broken_global() {
        let src = "int bad = ;
            int good = 2;
            int f() { return good; }";
        let (prog, errors) = parse_program_resilient(src, &[]);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(prog.globals.len(), 1);
        assert_eq!(prog.globals[0].name.as_str(), "good");
        assert_eq!(prog.funcs.len(), 1);
    }

    #[test]
    fn resilient_parse_collects_multiple_diagnostics() {
        let src = "int a = ;
            int f() { int x = * ; return 0 }
            int b = 3;";
        let (prog, errors) = parse_program_resilient(src, &[]);
        assert!(errors.len() >= 2, "{errors:?}");
        assert!(prog.globals.iter().any(|g| g.name.as_str() == "b"));
    }

    #[test]
    fn resilient_parse_of_garbage_terminates_with_diagnostics() {
        let (prog, errors) = parse_program_resilient("}}}}((( ;;; ***", &[]);
        assert!(prog.funcs.is_empty());
        assert!(!errors.is_empty());
        let (prog, errors) = parse_program_resilient("", &[]);
        assert!(prog.globals.is_empty() && errors.is_empty());
    }

    #[test]
    fn resilient_parse_reports_unterminated_blocks() {
        let (_, errors) = parse_program_resilient("int f() { int x = 1;", &[]);
        assert!(
            errors.iter().any(|e| e.message.contains("end of input")),
            "{errors:?}"
        );
    }
}
