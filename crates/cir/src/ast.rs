//! The CIL-like intermediate representation.
//!
//! Following CIL, the representation "cleanly distinguishes expressions,
//! which are side-effect-free, from instructions": [`Expr`] has no calls
//! and no assignments, while [`Instr`] covers assignments, calls, and
//! memory allocation. The qualifier checker in `stq-typecheck` relies on
//! this split — `case` patterns match expressions, `assign` rules govern
//! instructions.
//!
//! Qualifiers are stored directly on types ([`QualType`]), mirroring the
//! paper's use of gcc attributes; the parser attaches postfix qualifier
//! identifiers (e.g. `int pos x`) to the type to their left.

use std::collections::BTreeSet;
use std::fmt;
use stq_util::{Span, Symbol};

/// A base (unqualified, non-pointer) type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BaseTy {
    /// `void` — only meaningful as a return type or behind a pointer.
    Void,
    /// `int`.
    Int,
    /// `char`.
    Char,
    /// `struct name`.
    Struct(Symbol),
}

impl fmt::Display for BaseTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTy::Void => f.write_str("void"),
            BaseTy::Int => f.write_str("int"),
            BaseTy::Char => f.write_str("char"),
            BaseTy::Struct(s) => write!(f, "struct {s}"),
        }
    }
}

/// The shape of a type: a base type or a pointer to a qualified type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// A base type.
    Base(BaseTy),
    /// Pointer to a (possibly qualified) type.
    Ptr(Box<QualType>),
}

/// A type together with its set of user-defined qualifiers.
///
/// Qualifier order is irrelevant (paper §2.1), so the set is a `BTreeSet`.
///
/// # Examples
///
/// ```
/// use stq_cir::ast::{BaseTy, QualType};
///
/// let pos_int = QualType::base(BaseTy::Int).with_qual("pos");
/// assert!(pos_int.has_qual(stq_util::Symbol::intern("pos")));
/// assert_eq!(pos_int.to_string(), "int pos");
///
/// let ptr = pos_int.ptr_to().with_qual("nonnull");
/// assert_eq!(ptr.to_string(), "int pos * nonnull");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QualType {
    /// The underlying shape.
    pub ty: Ty,
    /// User-defined qualifiers attached at this level.
    pub quals: BTreeSet<Symbol>,
}

impl QualType {
    /// An unqualified base type.
    pub fn base(b: BaseTy) -> QualType {
        QualType {
            ty: Ty::Base(b),
            quals: BTreeSet::new(),
        }
    }

    /// Unqualified `int`.
    pub fn int() -> QualType {
        QualType::base(BaseTy::Int)
    }

    /// Unqualified `char`.
    pub fn char_ty() -> QualType {
        QualType::base(BaseTy::Char)
    }

    /// Unqualified `void`.
    pub fn void() -> QualType {
        QualType::base(BaseTy::Void)
    }

    /// An unqualified pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> QualType {
        QualType {
            ty: Ty::Ptr(Box::new(self)),
            quals: BTreeSet::new(),
        }
    }

    /// Adds a qualifier at the top level.
    #[must_use]
    pub fn with_qual(mut self, q: &str) -> QualType {
        self.quals.insert(Symbol::intern(q));
        self
    }

    /// Adds a qualifier symbol at the top level.
    #[must_use]
    pub fn with_qual_sym(mut self, q: Symbol) -> QualType {
        self.quals.insert(q);
        self
    }

    /// Whether the top level carries qualifier `q`.
    pub fn has_qual(&self, q: Symbol) -> bool {
        self.quals.contains(&q)
    }

    /// The same type with all top-level qualifiers removed.
    #[must_use]
    pub fn stripped(&self) -> QualType {
        QualType {
            ty: self.ty.clone(),
            quals: BTreeSet::new(),
        }
    }

    /// The same type with the given qualifiers removed from the top level.
    #[must_use]
    pub fn without_quals(&self, remove: &BTreeSet<Symbol>) -> QualType {
        QualType {
            ty: self.ty.clone(),
            quals: self.quals.difference(remove).copied().collect(),
        }
    }

    /// The pointee type, if this is a pointer.
    pub fn pointee(&self) -> Option<&QualType> {
        match &self.ty {
            Ty::Ptr(inner) => Some(inner),
            Ty::Base(_) => None,
        }
    }

    /// Whether the shape (ignoring all qualifiers, recursively) matches.
    pub fn same_shape(&self, other: &QualType) -> bool {
        match (&self.ty, &other.ty) {
            (Ty::Base(a), Ty::Base(b)) => a == b,
            (Ty::Ptr(a), Ty::Ptr(b)) => a.same_shape(b),
            _ => false,
        }
    }

    /// Whether this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self.ty, Ty::Ptr(_))
    }
}

impl fmt::Display for QualType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ty {
            Ty::Base(b) => write!(f, "{b}")?,
            Ty::Ptr(inner) => write!(f, "{inner} *")?,
        }
        for q in &self.quals {
            write!(f, " {q}")?;
        }
        Ok(())
    }
}

/// Unary operators (side-effect-free).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Bitwise not `~e`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        })
    }
}

/// Binary operators (side-effect-free).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+` (also pointer arithmetic under the logical memory model).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        })
    }
}

/// A side-effect-free expression with its source span.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Expr {
    /// The expression shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The shapes of side-effect-free expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// String literal.
    StrLit(String),
    /// The `NULL` constant.
    Null,
    /// Reading an l-value.
    Lval(Box<Lvalue>),
    /// `&lv`.
    AddrOf(Box<Lvalue>),
    /// Unary operation.
    Unop(UnOp, Box<Expr>),
    /// Binary operation.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// `(type) e`.
    Cast(QualType, Box<Expr>),
    /// `sizeof(type)` — one word per scalar under the logical memory model.
    SizeOf(QualType),
}

impl Expr {
    /// Builds an expression with a dummy span (for synthesized code).
    pub fn new(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::new(ExprKind::IntLit(v))
    }

    /// The `NULL` constant.
    pub fn null() -> Expr {
        Expr::new(ExprKind::Null)
    }

    /// Reads a variable.
    pub fn var(name: &str) -> Expr {
        Expr::new(ExprKind::Lval(Box::new(Lvalue::var(name))))
    }

    /// Reads an l-value.
    pub fn lval(lv: Lvalue) -> Expr {
        Expr::new(ExprKind::Lval(Box::new(lv)))
    }

    /// `&lv`.
    pub fn addr_of(lv: Lvalue) -> Expr {
        Expr::new(ExprKind::AddrOf(Box::new(lv)))
    }

    /// Binary operation.
    pub fn binop(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::new(ExprKind::Binop(op, Box::new(a), Box::new(b)))
    }

    /// Unary operation.
    pub fn unop(op: UnOp, a: Expr) -> Expr {
        Expr::new(ExprKind::Unop(op, Box::new(a)))
    }

    /// `(ty) self`.
    #[must_use]
    pub fn cast(self, ty: QualType) -> Expr {
        Expr::new(ExprKind::Cast(ty, Box::new(self)))
    }

    /// The expression with top-level casts removed (pattern matching in
    /// qualifier rules looks through casts, paper §2.2.1).
    pub fn strip_casts(&self) -> &Expr {
        match &self.kind {
            ExprKind::Cast(_, inner) => inner.strip_casts(),
            _ => self,
        }
    }

    /// If the expression is (a cast around) an l-value read, that l-value.
    pub fn as_lval(&self) -> Option<&Lvalue> {
        match &self.strip_casts().kind {
            ExprKind::Lval(lv) => Some(lv),
            _ => None,
        }
    }
}

/// An l-value (assignable location) with its source span.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lvalue {
    /// The l-value shape.
    pub kind: LvalKind,
    /// Source location.
    pub span: Span,
}

/// The shapes of l-values. `e->f` is normalized to `(*e).f` and `a[i]` to
/// `*(a + i)` during parsing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LvalKind {
    /// A named variable (local, parameter, or global).
    Var(Symbol),
    /// `*e`.
    Deref(Expr),
    /// `lv.f`.
    Field(Box<Lvalue>, Symbol),
}

impl Lvalue {
    /// Builds an l-value with a dummy span.
    pub fn new(kind: LvalKind) -> Lvalue {
        Lvalue {
            kind,
            span: Span::DUMMY,
        }
    }

    /// A named variable.
    pub fn var(name: &str) -> Lvalue {
        Lvalue::new(LvalKind::Var(Symbol::intern(name)))
    }

    /// `*e`.
    pub fn deref(e: Expr) -> Lvalue {
        Lvalue::new(LvalKind::Deref(e))
    }

    /// `lv.f`.
    pub fn field(lv: Lvalue, f: &str) -> Lvalue {
        Lvalue::new(LvalKind::Field(Box::new(lv), Symbol::intern(f)))
    }

    /// The variable name, if this l-value is a plain variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self.kind {
            LvalKind::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// An instruction: the side-effecting atoms of the language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instr {
    /// The instruction shape.
    pub kind: InstrKind,
    /// Source location.
    pub span: Span,
}

/// The shapes of instructions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InstrKind {
    /// `lv = e;`
    Set(Lvalue, Expr),
    /// `lv = f(args);` or `f(args);`
    Call(Option<Lvalue>, Symbol, Vec<Expr>),
    /// `lv = malloc(size);` — matched by the `new` pattern in qualifier
    /// definitions. An optional cast type records `(T*)malloc(...)`.
    Alloc(Lvalue, Expr),
    /// A run-time qualifier check inserted by cast instrumentation
    /// (paper §2.1.3): verifies the value of the expression satisfies the
    /// qualifier's invariant, aborting the program otherwise.
    RuntimeCheck(Symbol, Expr),
}

impl Instr {
    /// Builds an instruction with a dummy span.
    pub fn new(kind: InstrKind) -> Instr {
        Instr {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// A local variable declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalDecl {
    /// Variable name.
    pub name: Symbol,
    /// Declared (possibly qualified) type.
    pub ty: QualType,
    /// Optional initializer. Allocation initializers (`malloc`) appear as
    /// a separate [`InstrKind::Alloc`] emitted by the parser instead.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A statement with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stmt {
    /// The statement shape.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The shapes of statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StmtKind {
    /// An instruction.
    Instr(Instr),
    /// A braced block.
    Block(Vec<Stmt>),
    /// `if (cond) then else?`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`
    While(Expr, Box<Stmt>),
    /// `return e?;`
    Return(Option<Expr>),
    /// A local declaration.
    Decl(LocalDecl),
}

impl Stmt {
    /// Builds a statement with a dummy span.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }

    /// Wraps an instruction.
    pub fn instr(kind: InstrKind) -> Stmt {
        Stmt::new(StmtKind::Instr(Instr::new(kind)))
    }
}

/// A function signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncSig {
    /// Parameter names and types.
    pub params: Vec<(Symbol, QualType)>,
    /// Return type.
    pub ret: QualType,
    /// Whether the function is variadic (`...`), like `printf`.
    pub varargs: bool,
}

/// A function definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncDef {
    /// Function name.
    pub name: Symbol,
    /// Signature.
    pub sig: FuncSig,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A function prototype (declaration without a body).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncProto {
    /// Function name.
    pub name: Symbol,
    /// Signature.
    pub sig: FuncSig,
    /// Source location.
    pub span: Span,
}

/// A struct definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructDef {
    /// Struct tag.
    pub name: Symbol,
    /// Field names and types, in declaration order.
    pub fields: Vec<(Symbol, QualType)>,
    /// Source location.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: Symbol,
    /// Declared type.
    pub ty: QualType,
    /// Optional constant initializer.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A whole translation unit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDecl>,
    /// Function prototypes (externs and forward declarations).
    pub protos: Vec<FuncProto>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a struct definition by tag.
    pub fn struct_def(&self, name: Symbol) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a function definition by name.
    pub fn func(&self, name: Symbol) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a function signature (definition or prototype).
    pub fn signature(&self, name: Symbol) -> Option<&FuncSig> {
        self.funcs
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.sig)
            .or_else(|| self.protos.iter().find(|p| p.name == name).map(|p| &p.sig))
    }

    /// Looks up a global declaration.
    pub fn global(&self, name: Symbol) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualtype_display_postfix() {
        let t = QualType::int().with_qual("pos");
        assert_eq!(t.to_string(), "int pos");
        let p = t.ptr_to().with_qual("nonnull");
        assert_eq!(p.to_string(), "int pos * nonnull");
    }

    #[test]
    fn qual_order_is_irrelevant() {
        let a = QualType::int().with_qual("pos").with_qual("nonzero");
        let b = QualType::int().with_qual("nonzero").with_qual("pos");
        assert_eq!(a, b);
    }

    #[test]
    fn stripped_removes_only_top_level() {
        let inner = QualType::int().with_qual("pos");
        let p = inner.clone().ptr_to().with_qual("unique");
        let s = p.stripped();
        assert!(s.quals.is_empty());
        assert_eq!(s.pointee(), Some(&inner));
    }

    #[test]
    fn same_shape_ignores_quals() {
        let a = QualType::int().with_qual("pos").ptr_to();
        let b = QualType::int().ptr_to().with_qual("unique");
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&QualType::int()));
        assert!(!QualType::char_ty().same_shape(&QualType::int()));
    }

    #[test]
    fn strip_casts_reaches_core() {
        let e = Expr::int(3)
            .cast(QualType::int().with_qual("pos"))
            .cast(QualType::int());
        assert_eq!(e.strip_casts(), &Expr::int(3));
    }

    #[test]
    fn as_lval_sees_through_casts() {
        let e = Expr::var("x").cast(QualType::int().ptr_to());
        assert_eq!(e.as_lval(), Some(&Lvalue::var("x")));
        assert_eq!(Expr::int(1).as_lval(), None);
    }

    #[test]
    fn program_lookups() {
        let mut p = Program::new();
        p.structs.push(StructDef {
            name: Symbol::intern("dfa"),
            fields: vec![(Symbol::intern("trans"), QualType::int().ptr_to())],
            span: Span::DUMMY,
        });
        p.protos.push(FuncProto {
            name: Symbol::intern("gcd"),
            sig: FuncSig {
                params: vec![],
                ret: QualType::int(),
                varargs: false,
            },
            span: Span::DUMMY,
        });
        assert!(p.struct_def(Symbol::intern("dfa")).is_some());
        assert!(p.signature(Symbol::intern("gcd")).is_some());
        assert!(p.func(Symbol::intern("gcd")).is_none());
        assert!(p.global(Symbol::intern("gcd")).is_none());
    }

    #[test]
    fn without_quals_subtracts() {
        let t = QualType::int().with_qual("pos").with_qual("nonzero");
        let mut remove = BTreeSet::new();
        remove.insert(Symbol::intern("pos"));
        let r = t.without_quals(&remove);
        assert!(!r.has_qual(Symbol::intern("pos")));
        assert!(r.has_qual(Symbol::intern("nonzero")));
    }

    #[test]
    fn binop_comparisons() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }
}
