//! Pretty-printer: renders the IR back to C-subset source.
//!
//! Used by the experiment harness to materialize the synthetic corpora
//! (the paper counts "non-blank, non-comment lines of code", which we
//! measure over this printer's output) and by diagnostics.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as C-subset source text.
///
/// The output round-trips through [`crate::parse::parse_program`] provided
/// the same qualifier set is supplied (run-time check instructions print
/// as `__stq_check_<qual>(e)` calls and do not round-trip).
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.structs {
        let _ = writeln!(out, "struct {} {{", s.name);
        for (name, ty) in &s.fields {
            let _ = writeln!(out, "    {ty} {name};");
        }
        let _ = writeln!(out, "}};");
    }
    for g in &p.globals {
        match &g.init {
            Some(e) => {
                let _ = writeln!(out, "{} {} = {};", g.ty, g.name, expr_to_string(e));
            }
            None => {
                let _ = writeln!(out, "{} {};", g.ty, g.name);
            }
        }
    }
    for proto in &p.protos {
        let _ = writeln!(
            out,
            "{} {}({});",
            proto.sig.ret,
            proto.name,
            params_to_string(&proto.sig)
        );
    }
    for f in &p.funcs {
        let _ = writeln!(
            out,
            "{} {}({}) {{",
            f.sig.ret,
            f.name,
            params_to_string(&f.sig)
        );
        for stmt in &f.body {
            write_stmt(&mut out, stmt, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn params_to_string(sig: &FuncSig) -> String {
    let mut parts: Vec<String> = sig
        .params
        .iter()
        .map(|(name, ty)| format!("{ty} {name}"))
        .collect();
    if sig.varargs {
        parts.push("...".to_owned());
    }
    if parts.is_empty() {
        "void".to_owned()
    } else {
        parts.join(", ")
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Instr(i) => {
            indent(out, level);
            let _ = writeln!(out, "{}", instr_to_string(i));
        }
        StmtKind::Block(stmts) => {
            indent(out, level);
            out.push_str("{\n");
            for s in stmts {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::If(cond, then, els) => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            write_body(out, then, level);
            match els {
                None => {
                    indent(out, level);
                    out.push_str("}\n");
                }
                Some(e) => {
                    indent(out, level);
                    out.push_str("} else {\n");
                    write_body(out, e, level);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        StmtKind::While(cond, body) => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", expr_to_string(cond));
            write_body(out, body, level);
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Return(None) => {
            indent(out, level);
            out.push_str("return;\n");
        }
        StmtKind::Return(Some(e)) => {
            indent(out, level);
            let _ = writeln!(out, "return {};", expr_to_string(e));
        }
        StmtKind::Decl(d) => {
            indent(out, level);
            match &d.init {
                Some(e) => {
                    let _ = writeln!(out, "{} {} = {};", d.ty, d.name, expr_to_string(e));
                }
                None => {
                    let _ = writeln!(out, "{} {};", d.ty, d.name);
                }
            }
        }
    }
}

/// Writes the inside of an `if`/`while` body (flattening a block).
fn write_body(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                write_stmt(out, s, level + 1);
            }
        }
        _ => write_stmt(out, stmt, level + 1),
    }
}

/// Renders a single instruction.
pub fn instr_to_string(i: &Instr) -> String {
    match &i.kind {
        InstrKind::Set(lv, e) => {
            format!("{} = {};", lval_to_string(lv), expr_to_string(e))
        }
        InstrKind::Call(None, f, args) => format!("{f}({});", args_to_string(args)),
        InstrKind::Call(Some(lv), f, args) => {
            format!("{} = {f}({});", lval_to_string(lv), args_to_string(args))
        }
        InstrKind::Alloc(lv, size) => {
            format!("{} = malloc({});", lval_to_string(lv), expr_to_string(size))
        }
        InstrKind::RuntimeCheck(q, e) => {
            format!("__stq_check_{q}({});", expr_to_string(e))
        }
    }
}

fn args_to_string(args: &[Expr]) -> String {
    args.iter()
        .map(expr_to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders an expression (fully parenthesized where precedence matters).
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::StrLit(s) => format!("{:?}", s),
        ExprKind::Null => "NULL".to_owned(),
        ExprKind::Lval(lv) => lval_to_string(lv),
        ExprKind::AddrOf(lv) => format!("&{}", lval_to_string(lv)),
        ExprKind::Unop(op, a) => {
            // A negative-literal operand renders starting with `-`; left
            // bare it would fuse with a `-` operator into an unparseable
            // `--` token (found by `stqc fuzz`'s round-trip oracle).
            let inner = atom(a);
            if inner.starts_with('-') {
                format!("{op}({inner})")
            } else {
                format!("{op}{inner}")
            }
        }
        ExprKind::Binop(op, a, b) => format!("{} {op} {}", atom(a), atom(b)),
        ExprKind::Cast(ty, a) => format!("({ty}) {}", atom(a)),
        ExprKind::SizeOf(ty) => format!("sizeof({ty})"),
    }
}

/// Renders an expression, parenthesizing anything compound.
fn atom(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Null
        | ExprKind::Lval(_)
        | ExprKind::SizeOf(_)
        | ExprKind::AddrOf(_) => expr_to_string(e),
        _ => format!("({})", expr_to_string(e)),
    }
}

/// Renders an l-value.
pub fn lval_to_string(lv: &Lvalue) -> String {
    match &lv.kind {
        LvalKind::Var(v) => v.to_string(),
        LvalKind::Deref(e) => format!("*{}", atom(e)),
        LvalKind::Field(inner, f) => match &inner.kind {
            // Print (*e).f back as e->f for readability.
            LvalKind::Deref(e) => format!("{}->{f}", atom(e)),
            _ => format!("{}.{f}", lval_to_string(inner)),
        },
    }
}

/// Counts non-blank lines in rendered source (the paper's "non-blank,
/// non-comment lines"; the printer emits no comments).
pub fn count_lines(source: &str) -> usize {
    source.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const QUALS: &[&str] = &["pos", "nonnull", "unique", "untainted"];

    fn round_trip(src: &str) {
        let p1 = parse_program(src, QUALS).expect("first parse");
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed, QUALS)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        let printed2 = program_to_string(&p2);
        assert_eq!(printed, printed2, "printer not idempotent");
    }

    #[test]
    fn round_trip_lcm() {
        round_trip(
            r#"
            int pos gcd(int pos n, int pos m);
            int pos lcm(int pos a, int pos b) {
                int pos d = gcd(a, b);
                int pos prod = a * b;
                return (int pos) (prod / d);
            }
            "#,
        );
    }

    #[test]
    fn round_trip_structs_and_loops() {
        round_trip(
            r#"
            struct dfa { int* trans; int works; };
            struct dfa* unique d;
            void build(int n) {
                d = malloc(sizeof(struct dfa));
                for (int i = 0; i < n; i++) {
                    if (d->trans != NULL) {
                        d->works = i;
                    } else {
                        d->works = 0 - 1;
                    }
                }
            }
            "#,
        );
    }

    #[test]
    fn round_trip_strings_and_calls() {
        round_trip(
            r#"
            int printf(char * untainted fmt, ...);
            void f(char* buf) {
                char * untainted fmt = (char * untainted) "%s\n";
                printf(fmt, buf);
            }
            "#,
        );
    }

    #[test]
    fn runtime_check_prints() {
        let i = Instr::new(InstrKind::RuntimeCheck(
            stq_util::Symbol::intern("pos"),
            Expr::var("x"),
        ));
        assert_eq!(instr_to_string(&i), "__stq_check_pos(x);");
    }

    #[test]
    fn expr_precedence_is_parenthesized() {
        let e = Expr::binop(
            BinOp::Mul,
            Expr::binop(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(expr_to_string(&e), "(a + b) * c");
    }

    #[test]
    fn arrow_field_prints_back() {
        let lv = Lvalue::field(Lvalue::deref(Expr::var("e")), "d_name");
        assert_eq!(lval_to_string(&lv), "e->d_name");
    }

    #[test]
    fn count_lines_skips_blanks() {
        assert_eq!(count_lines("a\n\n  \nb\n"), 2);
        assert_eq!(count_lines(""), 0);
    }
}
