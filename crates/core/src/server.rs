//! Checking-as-a-service: the resident server behind `stqc serve`.
//!
//! A one-shot `stqc` invocation pays the full startup bill every time —
//! re-parsing the builtin qualifier library, re-deriving obligations,
//! re-opening the proof cache — and then throws the warm state away.
//! This module keeps all of it resident: one [`Server`] holds the
//! interner (process-global), the qualifier [`Session`], and a warm
//! [`ProofCache`], and multiplexes many concurrent requests onto a
//! bounded worker pool (`stq_util::serve::Scheduler`). The wire
//! protocol — line-delimited JSON over a Unix socket, or stdin/stdout
//! in `--stdio` mode — is documented end-to-end in `docs/serving.md`.
//!
//! The concurrency/robustness contract, in brief:
//!
//! * **Per-request isolation.** Every request runs under its own
//!   [`CancelToken`], a child of its connection's token, itself a child
//!   of the server's token — so a per-request `deadline_ms` interrupts
//!   exactly that request, a client disconnect cancels exactly that
//!   client's in-flight work, and SIGINT winds down everything, in all
//!   cases cooperatively at prover safepoints with conclusive verdicts
//!   kept (and cached).
//! * **Fairness.** Each connection may have at most
//!   [`ServeConfig::max_inflight`] requests submitted-but-unfinished;
//!   excess requests are refused immediately with an `overloaded`
//!   error, so one chatty client cannot starve the rest.
//! * **Shedding.** The global queue is bounded
//!   ([`ServeConfig::max_queue`]); when it is full the server answers
//!   `overloaded` rather than building unbounded backlog.
//! * **Graceful shutdown.** A `shutdown` request (or SIGINT) stops
//!   accepting work, drains what is queued and in flight, persists the
//!   proof cache, and exits — `docs/robustness.md` has the exit-code
//!   taxonomy.
//! * **Multiplexed connections.** The daemon's connection layer is an
//!   event-driven reactor (`stq_util::reactor`): one thread blocks in
//!   `poll(2)` over every accepted socket — Unix-domain and TCP alike —
//!   so an idle connection costs a buffer and a table entry, not a
//!   thread, and the thread count is `1 + workers` regardless of how
//!   many clients are attached. The old thread-per-client
//!   [`Server::serve_stream`] survives for embedded transports.
//! * **Single-flight dedup.** Identical concurrent `prove` requests
//!   coalesce: the first becomes the *leader* and runs the solver; the
//!   rest become *waiters* that consume no worker slot and receive a
//!   byte-identical copy of the leader's answer under their own request
//!   id (`dedup_hits` in `stats` counts the answers fanned out without a
//!   solver run). A leader that disconnects or is interrupted hands the
//!   flight to the first surviving waiter, which re-runs.
//! * **Hot reload.** The `reload` method (and the `--watch-libs`
//!   poller) re-parses the qualifier libraries the daemon was started
//!   with through the same transactional clone-validate-swap as
//!   `define_qualifiers`: in-flight requests answer under the old
//!   registry, the define epoch bumps on swap, and a broken library
//!   rolls back without touching the resident session.
//! * **Shared warm cache.** Several daemons may point at one
//!   `--cache-dir`: journal appends are flock-serialized, and each
//!   daemon *follows* the journal tail on a cache miss, adopting proofs
//!   its peers persisted (`follow_hits` under `cache` in `stats`) — the
//!   substrate of the multi-daemon failover story in
//!   `docs/robustness.md`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use stq_soundness::{Budget, BudgetOverride, ProofCache, RetryPolicy, SoundnessReport};
use stq_util::json::{escape, Json};
use stq_util::netfault::{ChaosWriter, NetFaultInjector, NetFaultPlan};
use stq_util::serve::{Rejected, Scheduler};
use stq_util::CancelToken;

use crate::reportjson::{check_stats_json, qual_report_json};
use crate::Session;

/// How a server run ended; the CLI maps this onto its exit codes
/// (0 for a requested shutdown, 5 for an interruption).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownKind {
    /// A client sent `shutdown` (or stdio input ended): the drain was
    /// orderly and every accepted request was answered.
    Requested,
    /// SIGINT (or an external cancel): in-flight work was cooperatively
    /// cancelled, partial results were still answered and cached.
    Interrupted,
}

/// Server configuration; every knob has a production-shaped default.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub jobs: usize,
    /// Per-connection cap on submitted-but-unfinished requests.
    pub max_inflight: usize,
    /// Global cap on queued requests before shedding.
    pub max_queue: usize,
    /// Proof-cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Base prover budget; requests may override fields per call.
    pub budget: Budget,
    /// Base retry ladder for `ResourceOut` obligations.
    pub retry: RetryPolicy,
    /// Default obligation-level parallelism *within* one prove request
    /// (requests multiplex across workers already, so this defaults to
    /// sequential; a lone heavy request can raise it per call).
    pub prove_jobs: usize,
    /// Close a connection whose reader has been idle this long with no
    /// requests in flight; `None` keeps connections open forever.
    pub idle_timeout: Option<Duration>,
    /// Longest request line accepted before the reader answers a
    /// structured `input` error and discards to the next newline
    /// (`0` disables the guard). Without this, one newline-less client
    /// could buffer the reader thread into the ground.
    pub max_line_bytes: usize,
    /// Wire-fault plan for the chaos harness: when set, every response
    /// write may be corrupted, severed, or stalled per the plan
    /// (see `stq_util::netfault` and `docs/robustness.md`).
    pub netfault: Option<NetFaultPlan>,
    /// The qualifier-library files (`--quals`) this server was started
    /// with, in load order — what the `reload` method re-parses.
    pub qual_files: Vec<PathBuf>,
    /// `--watch-libs`: poll `qual_files` for modification and reload
    /// automatically when any changes.
    pub watch_libs: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            jobs: stq_util::pool::default_jobs(),
            max_inflight: 32,
            max_queue: 1024,
            cache_dir: None,
            budget: Budget::default(),
            retry: RetryPolicy::none(),
            prove_jobs: 1,
            idle_timeout: None,
            max_line_bytes: 1 << 20,
            netfault: None,
            qual_files: Vec::new(),
            watch_libs: false,
        }
    }
}

/// Monotonic serve-lifetime counters, reported by the `stats` method.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    connections: AtomicU64,
    disconnects: AtomicU64,
    define: AtomicU64,
    check: AtomicU64,
    prove: AtomicU64,
    stats: AtomicU64,
    health: AtomicU64,
    shutdown: AtomicU64,
    /// `reload` protocol requests received (the watcher's automatic
    /// reloads are not requests and count only below).
    reload: AtomicU64,
    /// Successful library reloads — RPC-initiated or watcher-initiated —
    /// each one a completed clone-validate-swap and epoch bump.
    reloads: AtomicU64,
    /// Reload attempts that rolled back (unreadable or ill-formed
    /// library); the resident registry was left untouched.
    reload_failures: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    interrupted: AtomicU64,
    inflight: AtomicU64,
    oversized: AtomicU64,
    bad_utf8: AtomicU64,
    idle_closed: AtomicU64,
    /// Answers fanned out from a single-flight leader's solver run to
    /// coalesced duplicate requests (N identical concurrent proves cost
    /// one run and N−1 dedup hits).
    dedup_hits: AtomicU64,
    /// Currently-open connections (gauge, not a counter) — maintained by
    /// the reactor and by the `--stdio`/embedded paths alike, so tests
    /// can assert teardown releases resources promptly.
    open_connections: AtomicU64,
    /// Mirrors of the reactor's `poll(2)`-return / wake-pipe-drain
    /// counters, refreshed each loop iteration; 0 outside reactor mode.
    reactor_polls: AtomicU64,
    reactor_wakeups: AtomicU64,
}

impl ServeStats {
    fn new() -> ServeStats {
        ServeStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            define: AtomicU64::new(0),
            check: AtomicU64::new(0),
            prove: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            health: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            reload: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            interrupted: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            bad_utf8: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            reactor_polls: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
        }
    }
}

/// One client connection: its cancel token (a child of the server's),
/// its serialized write half, and its fairness accounting.
struct Conn {
    token: CancelToken,
    writer: Mutex<Box<dyn Write + Send>>,
    /// Cleared on disconnect; queued jobs for a vanished client are
    /// skipped instead of run.
    alive: AtomicBool,
    inflight: AtomicU64,
}

impl Conn {
    fn new(token: CancelToken, writer: Box<dyn Write + Send>) -> Conn {
        Conn {
            token,
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
            inflight: AtomicU64::new(0),
        }
    }

    fn alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Writes one response line (a single `write_all`, so the chaos
    /// layer's write-op indices line up with response lines). A failed
    /// write means the client is gone; the connection is marked dead so
    /// later jobs skip.
    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let ok = w
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| w.flush())
            .is_ok();
        if !ok {
            self.alive.store(false, Ordering::Release);
        }
    }
}

/// A structured protocol error: `(code, message)`. Codes are stable API
/// (`docs/serving.md`): `parse`, `invalid`, `unknown-method`, `input`,
/// `overloaded`, `shutting-down`.
type ServeError = (&'static str, String);

fn ok_response(id: &str, result: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result}}}")
}

fn err_response(id: &str, code: &str, message: &str) -> String {
    // `retryable` tells clients which rejections are safe to re-send
    // after a backoff: the request was provably never executed (see the
    // retry-semantics table in docs/serving.md).
    let retryable = matches!(code, "overloaded" | "shutting-down");
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"code\":\"{code}\",\"message\":\"{}\",\
         \"retryable\":{retryable}}}}}",
        escape(message)
    )
}

enum PumpOutcome {
    /// The peer closed its end (EOF or a read error).
    Disconnected,
    /// The server began stopping (shutdown request or cancel).
    Stopping,
}

/// An advisory `flock(2)` lock file guarding the socket-path lifecycle.
///
/// Stale-socket reclaim used to be a TOCTOU race: two daemons started at
/// the same moment could both connect-probe the stale path, both
/// `remove_file` it, and one would silently steal the socket the other
/// had just bound. The whole probe → unlink → bind sequence now runs
/// while holding `<socket>.lock` exclusively (same idiom as the proof
/// cache's journal lock in `stq-soundness::cache`), and the winning
/// daemon keeps holding it for its lifetime, so a concurrent starter
/// fails fast with `AddrInUse` instead of racing.
///
/// The lock file itself is never unlinked: removing it would reintroduce
/// the race one level up (a daemon locking an unlinked inode while a new
/// starter locks a fresh file at the same path). A leftover empty
/// `.lock` file is harmless.
#[cfg(unix)]
mod socklock {
    use std::fs::{File, OpenOptions};
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::{Path, PathBuf};

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;
    const LOCK_UN: i32 = 8;

    pub struct SocketLock {
        file: File,
    }

    pub fn lock_path(socket: &Path) -> PathBuf {
        let mut os = socket.as_os_str().to_owned();
        os.push(".lock");
        PathBuf::from(os)
    }

    impl SocketLock {
        /// Acquires `<socket>.lock` exclusively without blocking; a held
        /// lock means another daemon is starting or serving on this path.
        pub fn acquire(socket: &Path) -> io::Result<SocketLock> {
            let path = lock_path(socket);
            // The file's (empty) contents are shared lock state —
            // truncating a rival's already-open lock file would be rude
            // and is never needed.
            let file = OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(&path)?;
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
            if rc != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "another daemon is starting or serving on this path \
                         (socket lock {} is held)",
                        path.display()
                    ),
                ));
            }
            Ok(SocketLock { file })
        }
    }

    impl Drop for SocketLock {
        fn drop(&mut self) {
            // Closing the fd would release the lock anyway; the explicit
            // unlock documents intent and survives fd-leak refactors.
            unsafe {
                flock(self.file.as_raw_fd(), LOCK_UN);
            }
        }
    }
}

/// One registered requester in a single-flight [`Flight`]: who to answer
/// (`conn` + echoed `id`) and the deadline it asked for (applied only if
/// this waiter is ever promoted to leader).
struct Waiter {
    conn: Arc<Conn>,
    id: String,
    deadline_ms: Option<u64>,
}

/// One in-flight deduplicated `prove`: the parameters (identical for
/// every member, by key construction) and the ordered member list —
/// `waiters[0]` is the current leader. Pushes happen only while holding
/// the server's flight-table lock, so removing a flight from the table
/// is a linearization point after which no new member can join.
struct Flight {
    params: Json,
    waiters: Mutex<Vec<Waiter>>,
}

/// 128-bit FNV-1a — the same construction `stq-logic`'s obligation
/// fingerprints use; the digest is wrapped in [`stq_logic::Fingerprint`]
/// to key the flight table.
fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A `prove` handler result: the rendered payload plus whether the run
/// was interrupted (deadline/cancel). The flag drives single-flight
/// leader handoff — interrupted partials are leader-specific and never
/// fanned out to waiters.
struct ProveOutput {
    json: String,
    interrupted: bool,
}

/// How long a worker will wait for a stalled peer to drain its socket
/// before declaring the connection dead (reactor transports only; the
/// write waits on `POLLOUT` instead of blocking the descriptor).
#[cfg(unix)]
const WRITE_STALL: Duration = Duration::from_secs(10);

/// One accepted reactor transport: both kinds speak the identical
/// line-delimited JSON protocol, so everything above the fd is shared.
#[cfg(unix)]
enum RawStream {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

#[cfg(unix)]
impl RawStream {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            RawStream::Unix(s) => s.set_nonblocking(nb),
            RawStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    fn try_clone(&self) -> io::Result<RawStream> {
        Ok(match self {
            RawStream::Unix(s) => RawStream::Unix(s.try_clone()?),
            RawStream::Tcp(s) => RawStream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown_both(&self) {
        let _ = match self {
            RawStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            RawStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

#[cfg(unix)]
impl std::os::unix::io::AsRawFd for RawStream {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            RawStream::Unix(s) => s.as_raw_fd(),
            RawStream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

#[cfg(unix)]
impl Read for RawStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            RawStream::Unix(s) => s.read(buf),
            RawStream::Tcp(s) => s.read(buf),
        }
    }
}

#[cfg(unix)]
impl Write for RawStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            RawStream::Unix(s) => s.write(buf),
            RawStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            RawStream::Unix(s) => s.flush(),
            RawStream::Tcp(s) => s.flush(),
        }
    }
}

/// Write half of a reactor connection. The fd is nonblocking (it is the
/// same socket the reactor polls for reads), so a worker writing a large
/// response parks in `poll(POLLOUT)` on `WouldBlock` — bounded by
/// [`WRITE_STALL`] — rather than spinning or blocking the reactor.
#[cfg(unix)]
struct PollWriter {
    inner: RawStream,
    stall: Duration,
}

#[cfg(unix)]
impl Write for PollWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        use std::os::unix::io::AsRawFd;
        loop {
            match self.inner.write(buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !stq_util::reactor::wait_writable(self.inner.as_raw_fd(), self.stall)? {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stopped draining its responses",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Per-connection reactor state: the readable stream, its framing
/// buffer, and the idle clock.
#[cfg(unix)]
struct ConnState {
    conn: Arc<Conn>,
    stream: RawStream,
    framer: Framer,
    last_activity: Instant,
}

#[cfg(unix)]
enum ConnVerdict {
    /// Still open; nothing more to read right now.
    Keep,
    /// Peer hung up (EOF or hard error): tear the connection down.
    Closed,
    /// A `shutdown` request was routed; the serve loop should drain.
    Stopping,
}

/// Line-framing state shared by the blocking reader ([`Server::pump`])
/// and the reactor: the partial-line buffer plus the oversized-discard
/// flag, so both transports get identical reader-defense behavior.
struct Framer {
    pending: Vec<u8>,
    discarding: bool,
}

impl Framer {
    fn new() -> Framer {
        Framer { pending: Vec::new(), discarding: false }
    }

    /// Ingests freshly-read bytes, routing every complete line. Returns
    /// true when the connection should stop reading (`shutdown` was
    /// handled).
    fn ingest(&mut self, server: &Arc<Server>, conn: &Arc<Conn>, bytes: &[u8]) -> bool {
        self.pending.extend_from_slice(bytes);
        loop {
            if let Some(eol) = self.pending.iter().position(|b| *b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=eol).collect();
                if self.discarding {
                    // The tail of a line already rejected as oversized.
                    self.discarding = false;
                    continue;
                }
                match std::str::from_utf8(&line[..eol]) {
                    Ok(text) if text.trim().is_empty() => {}
                    Ok(text) => {
                        if server.route(conn, text.trim()) {
                            return true;
                        }
                    }
                    Err(_) => {
                        server.stats.bad_utf8.fetch_add(1, Ordering::Relaxed);
                        server.respond_err(conn, "null", "input", "request line is not valid UTF-8");
                    }
                }
            } else {
                if !self.discarding
                    && server.cfg.max_line_bytes > 0
                    && self.pending.len() > server.cfg.max_line_bytes
                {
                    server.stats.oversized.fetch_add(1, Ordering::Relaxed);
                    server.respond_err(
                        conn,
                        "null",
                        "input",
                        &format!(
                            "request line exceeds {} bytes; discarding \
                             through the next newline",
                            server.cfg.max_line_bytes
                        ),
                    );
                    self.pending.clear();
                    self.discarding = true;
                }
                return false;
            }
        }
    }
}

/// The resident checking server. Construct once, share behind an
/// [`Arc`], and drive with [`Server::run_unix`] or [`Server::run_stdio`]
/// (or [`Server::serve_stream`] for an embedded transport).
pub struct Server {
    session: RwLock<Session>,
    cache: ProofCache,
    sched: Scheduler,
    stats: ServeStats,
    cancel: CancelToken,
    stopping: AtomicBool,
    netfault: Option<Arc<NetFaultInjector>>,
    /// Single-flight table: fingerprint of a resolved `prove` request →
    /// the flight currently running it. All member pushes happen under
    /// this lock (see [`Flight`]).
    flights: Mutex<HashMap<stq_logic::Fingerprint, Arc<Flight>>>,
    /// Bumped on every successful `define_qualifiers`, and mixed into
    /// every flight key: a prove after a (re)definition never coalesces
    /// with one from before it.
    define_epoch: AtomicU64,
    cfg: ServeConfig,
}

impl Server {
    /// Builds a server over `session` (typically
    /// [`Session::with_builtins`] plus `--quals` definitions).
    ///
    /// # Errors
    ///
    /// Opening `cache_dir` failed.
    pub fn new(session: Session, cfg: ServeConfig, cancel: CancelToken) -> io::Result<Server> {
        let cache = match &cfg.cache_dir {
            Some(dir) => ProofCache::at_dir(dir)?,
            None => ProofCache::in_memory(),
        };
        let netfault = cfg
            .netfault
            .clone()
            .filter(|plan| !plan.is_empty())
            .map(|plan| Arc::new(NetFaultInjector::new(plan)));
        Ok(Server {
            session: RwLock::new(session),
            cache,
            sched: Scheduler::new(cfg.jobs, cfg.max_queue),
            stats: ServeStats::new(),
            cancel,
            stopping: AtomicBool::new(false),
            netfault,
            flights: Mutex::new(HashMap::new()),
            define_epoch: AtomicU64::new(0),
            cfg,
        })
    }

    /// Wraps a connection's write half in the chaos layer when a
    /// net-fault plan is armed; `severer` hard-closes the underlying
    /// transport so the peer observes injected connection drops.
    fn chaos_writer(
        &self,
        writer: Box<dyn Write + Send>,
        severer: Option<Box<dyn Fn() + Send>>,
    ) -> Box<dyn Write + Send> {
        match &self.netfault {
            Some(injector) => Box::new(ChaosWriter::new(writer, Arc::clone(injector), severer)),
            None => writer,
        }
    }

    /// True once a shutdown request or an external cancel arrived.
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire) || self.cancel.is_cancelled()
    }

    /// Stops accepting work, drains queued + in-flight requests, and
    /// persists the proof cache (when it has a directory). Returns how
    /// the run ended.
    fn finish(&self) -> ShutdownKind {
        self.sched.close_and_drain();
        if self.cfg.cache_dir.is_some() {
            let _ = self.cache.persist();
        }
        if self.cancel.is_cancelled() {
            ShutdownKind::Interrupted
        } else {
            ShutdownKind::Requested
        }
    }

    /// Serves a single session over stdin/stdout — the `--stdio`
    /// testing mode. End-of-input is *batch* semantics, not a
    /// disconnect: every request read before EOF is still answered
    /// (so `printf '...requests...' | stqc serve --stdio` works), then
    /// the drain runs and the daemon exits.
    pub fn run_stdio(self: &Arc<Server>) -> ShutdownKind {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.stats.open_connections.fetch_add(1, Ordering::AcqRel);
        let writer = self.chaos_writer(Box::new(io::stdout()) as Box<dyn Write + Send>, None);
        let conn = Arc::new(Conn::new(self.cancel.child(), writer));
        let mut stdin = io::stdin();
        let _ = self.pump(&conn, &mut stdin);
        let kind = self.finish();
        self.stats.open_connections.fetch_sub(1, Ordering::AcqRel);
        kind
    }

    /// Serves one accepted Unix-socket connection until the peer hangs
    /// up or the server stops. Public so embedded transports (benches,
    /// tests) can drive a connection over `UnixStream::pair`.
    #[cfg(unix)]
    pub fn serve_stream(self: &Arc<Server>, stream: std::os::unix::net::UnixStream) {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        // The read timeout is what lets the reader notice server
        // shutdown while idle; see `pump`.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let writer = match stream.try_clone() {
            Ok(w) => Box::new(w) as Box<dyn Write + Send>,
            Err(_) => return,
        };
        let severer: Option<Box<dyn Fn() + Send>> = match self.netfault {
            Some(_) => match stream.try_clone() {
                Ok(s) => Some(Box::new(move || {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                })),
                Err(_) => return,
            },
            None => None,
        };
        let writer = self.chaos_writer(writer, severer);
        self.stats.open_connections.fetch_add(1, Ordering::AcqRel);
        let conn = Arc::new(Conn::new(self.cancel.child(), writer));
        let mut reader = stream;
        if let PumpOutcome::Disconnected = self.pump(&conn, &mut reader) {
            // A socket hangup *is* a disconnect: cancel this client's
            // subtree so queued and in-flight work winds down instead
            // of burning the pool for nobody.
            conn.alive.store(false, Ordering::Release);
            conn.token.cancel();
            self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        // Whichever way the pump ended, this connection's resources are
        // released now — the gauge is what regression tests watch to
        // prove teardown is prompt (the old accept loop leaked a
        // JoinHandle per connection until shutdown).
        self.stats.open_connections.fetch_sub(1, Ordering::AcqRel);
    }

    /// Binds `socket_path` and serves until shutdown. Returns how the
    /// run ended; the socket file is removed on the way out. A stale
    /// socket file left by a dead daemon is reclaimed — under an
    /// exclusive [`socklock`] lock, so two daemons racing for the same
    /// path cannot both reclaim it — and a *live* daemon on the same
    /// path is an `AddrInUse` error.
    #[cfg(unix)]
    pub fn run_unix(self: &Arc<Server>, socket_path: &std::path::Path) -> io::Result<ShutdownKind> {
        self.run_multi(Some(socket_path), None)
    }

    /// Serves the same wire protocol over TCP. The caller binds the
    /// listener (so it can learn the kernel-assigned port when binding
    /// `:0`) and hands it over.
    #[cfg(unix)]
    pub fn run_tcp(self: &Arc<Server>, listener: std::net::TcpListener) -> io::Result<ShutdownKind> {
        self.run_multi(None, Some(listener))
    }

    /// The reactor-driven serving loop behind [`run_unix`](Self::run_unix)
    /// and [`run_tcp`](Self::run_tcp): one thread multiplexes *both*
    /// listeners and every accepted connection through `poll(2)`
    /// (`stq_util::reactor`), handing parsed requests to the worker
    /// pool. Thread count is `1 + cfg.jobs`, independent of client
    /// count; an idle daemon blocks in the kernel with no timer churn
    /// (the poll timeout exists only when the root deadline or an idle
    /// sweep needs it).
    #[cfg(unix)]
    pub fn run_multi(
        self: &Arc<Server>,
        socket_path: Option<&std::path::Path>,
        tcp: Option<std::net::TcpListener>,
    ) -> io::Result<ShutdownKind> {
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::{UnixListener, UnixStream};
        use stq_util::reactor::{Interest, Reactor};

        // The whole probe → unlink → rebind sequence runs under the
        // exclusive socket lock, and the winner holds the lock for its
        // lifetime (dropped on the way out of this function).
        let mut _socket_guard = None;
        let unix_listener = match socket_path {
            Some(path) => {
                let guard = socklock::SocketLock::acquire(path)?;
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("a daemon is already serving {}", path.display()),
                            ));
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                listener.set_nonblocking(true)?;
                _socket_guard = Some(guard);
                Some(listener)
            }
            None => None,
        };
        if let Some(l) = &tcp {
            l.set_nonblocking(true)?;
        }

        const UNIX_LISTENER_TOKEN: usize = 0;
        const TCP_LISTENER_TOKEN: usize = 1;
        const FIRST_CONN_TOKEN: usize = 2;

        let mut reactor = Reactor::new()?;
        // A SIGINT — or any external cancel of the root token — must
        // interrupt a poll(2) blocked with no timeout: `cancel()` rings
        // the reactor's wake pipe (async-signal-safely).
        self.cancel.set_wake_fd(reactor.waker().raw_fd());
        if let Some(l) = &unix_listener {
            reactor.register(l.as_raw_fd(), UNIX_LISTENER_TOKEN, Interest::READABLE);
        }
        if let Some(l) = &tcp {
            reactor.register(l.as_raw_fd(), TCP_LISTENER_TOKEN, Interest::READABLE);
        }

        let mut conns: HashMap<usize, ConnState> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut events = Vec::new();
        let mut chunk = [0u8; 4096];

        let result: io::Result<()> = loop {
            if self.stopping() {
                break Ok(());
            }
            // Sleep exactly until something can happen: readiness on a
            // socket, the wake pipe, the root deadline, or the nearest
            // idle-connection expiry. With none of those armed the poll
            // blocks indefinitely — zero wakeups on an idle daemon.
            let mut timeout: Option<Duration> = self
                .cancel
                .deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            if let Some(idle) = self.cfg.idle_timeout {
                for state in conns.values() {
                    if state.conn.inflight.load(Ordering::Acquire) == 0 {
                        let left = idle.saturating_sub(state.last_activity.elapsed());
                        timeout = Some(timeout.map_or(left, |t| t.min(left)));
                    }
                }
            }
            if let Err(e) = reactor.poll_events(timeout, &mut events) {
                break Err(e);
            }
            self.stats.reactor_polls.store(reactor.polls(), Ordering::Relaxed);
            self.stats.reactor_wakeups.store(reactor.wakeups(), Ordering::Relaxed);
            for event in &events {
                match event.token {
                    UNIX_LISTENER_TOKEN => {
                        if let Some(l) = &unix_listener {
                            loop {
                                match l.accept() {
                                    Ok((stream, _)) => self.admit(
                                        RawStream::Unix(stream),
                                        &mut reactor,
                                        &mut conns,
                                        &mut next_token,
                                    ),
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    TCP_LISTENER_TOKEN => {
                        if let Some(l) = &tcp {
                            loop {
                                match l.accept() {
                                    Ok((stream, _)) => self.admit(
                                        RawStream::Tcp(stream),
                                        &mut reactor,
                                        &mut conns,
                                        &mut next_token,
                                    ),
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    token => {
                        let Some(state) = conns.get_mut(&token) else { continue };
                        match self.drive_conn(state, &mut chunk) {
                            ConnVerdict::Keep => {}
                            ConnVerdict::Stopping => {}
                            ConnVerdict::Closed => {
                                let state = conns.remove(&token).expect("conn state");
                                reactor.deregister(token);
                                self.retire(&state.conn);
                            }
                        }
                    }
                }
            }
            // Idle sweep: close connections that sat quiet past the
            // window with nothing in flight.
            if let Some(idle) = self.cfg.idle_timeout {
                let expired: Vec<usize> = conns
                    .iter()
                    .filter(|(_, s)| {
                        s.conn.inflight.load(Ordering::Acquire) == 0
                            && s.last_activity.elapsed() >= idle
                    })
                    .map(|(t, _)| *t)
                    .collect();
                for token in expired {
                    let state = conns.remove(&token).expect("conn state");
                    reactor.deregister(token);
                    self.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                    self.retire(&state.conn);
                }
            }
        };
        self.cancel.set_wake_fd(-1);
        if let Err(e) = result {
            if let Some(path) = socket_path {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }
        // Drain before teardown: queued and in-flight requests still
        // write their responses through the live connections.
        let kind = self.finish();
        for (token, state) in conns.drain() {
            reactor.deregister(token);
            self.stats.open_connections.fetch_sub(1, Ordering::AcqRel);
            drop(state);
        }
        if let Some(path) = socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(kind)
    }

    /// Sets up one accepted connection on the reactor: nonblocking
    /// stream, write half behind a [`PollWriter`] (plus the chaos layer
    /// when armed), a child cancel token, and a read registration.
    #[cfg(unix)]
    fn admit(
        self: &Arc<Server>,
        stream: RawStream,
        reactor: &mut stq_util::reactor::Reactor,
        conns: &mut HashMap<usize, ConnState>,
        next_token: &mut usize,
    ) {
        use std::os::unix::io::AsRawFd;

        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let Ok(write_half) = stream.try_clone() else { return };
        let writer =
            Box::new(PollWriter { inner: write_half, stall: WRITE_STALL }) as Box<dyn Write + Send>;
        let severer: Option<Box<dyn Fn() + Send>> = match self.netfault {
            Some(_) => match stream.try_clone() {
                Ok(s) => Some(Box::new(move || s.shutdown_both())),
                Err(_) => return,
            },
            None => None,
        };
        let writer = self.chaos_writer(writer, severer);
        let conn = Arc::new(Conn::new(self.cancel.child(), writer));
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.stats.open_connections.fetch_add(1, Ordering::AcqRel);
        let token = *next_token;
        *next_token += 1;
        reactor.register(stream.as_raw_fd(), token, stq_util::reactor::Interest::READABLE);
        conns.insert(
            token,
            ConnState { conn, stream, framer: Framer::new(), last_activity: Instant::now() },
        );
    }

    /// Reads everything currently available on one reactor connection.
    #[cfg(unix)]
    fn drive_conn(self: &Arc<Server>, state: &mut ConnState, chunk: &mut [u8]) -> ConnVerdict {
        loop {
            match state.stream.read(chunk) {
                Ok(0) => return ConnVerdict::Closed,
                Ok(n) => {
                    state.last_activity = Instant::now();
                    if state.framer.ingest(self, &state.conn, &chunk[..n]) {
                        return ConnVerdict::Stopping;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ConnVerdict::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ConnVerdict::Closed,
            }
        }
    }

    /// Marks a reactor connection gone: cancel its request subtree so
    /// queued and in-flight work winds down, and release the gauge.
    fn retire(&self, conn: &Conn) {
        conn.alive.store(false, Ordering::Release);
        conn.token.cancel();
        self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        self.stats.open_connections.fetch_sub(1, Ordering::AcqRel);
    }

    /// Reads the connection's byte stream, frames it into lines, and
    /// routes each line. Partial lines survive read timeouts (the
    /// buffer is owned here, not by a `BufReader`), which is how a
    /// blocked reader still notices `stopping` promptly.
    ///
    /// The reader defends itself: a line longer than
    /// [`ServeConfig::max_line_bytes`] is answered with one structured
    /// `input` error and discarded up to its newline instead of being
    /// buffered without bound, invalid UTF-8 gets the same structured
    /// rejection, and (when [`ServeConfig::idle_timeout`] is set) a
    /// connection with nothing in flight and nothing to say is closed.
    fn pump(self: &Arc<Server>, conn: &Arc<Conn>, reader: &mut dyn Read) -> PumpOutcome {
        let mut framer = Framer::new();
        let mut chunk = [0u8; 4096];
        let mut last_activity = Instant::now();
        loop {
            if self.stopping() {
                return PumpOutcome::Stopping;
            }
            match reader.read(&mut chunk) {
                Ok(0) => return PumpOutcome::Disconnected,
                Ok(n) => {
                    last_activity = Instant::now();
                    if framer.ingest(self, conn, &chunk[..n]) {
                        return PumpOutcome::Stopping;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if let Some(idle) = self.cfg.idle_timeout {
                        if conn.inflight.load(Ordering::Acquire) == 0
                            && last_activity.elapsed() >= idle
                        {
                            self.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                            return PumpOutcome::Disconnected;
                        }
                    }
                }
                Err(_) => return PumpOutcome::Disconnected,
            }
        }
    }

    /// Parses and dispatches one request line on the reader thread.
    /// Returns true when the connection should stop reading (a
    /// `shutdown` request was handled).
    fn route(self: &Arc<Server>, conn: &Arc<Conn>, line: &str) -> bool {
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                self.respond_err(conn, "null", "parse", &e.to_string());
                return false;
            }
        };
        // The id is echoed verbatim; it must exist and be a string or
        // number so responses are always attributable.
        let id = match doc.get("id") {
            Some(v @ (Json::Num(_) | Json::Str(_))) => v.to_string(),
            _ => {
                self.respond_err(conn, "null", "invalid", "request needs an `id` (string or number)");
                return false;
            }
        };
        let Some(method) = doc.get("method").and_then(Json::as_str) else {
            self.respond_err(conn, &id, "invalid", "request needs a string `method`");
            return false;
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_u64() {
                Some(ms) => Some(ms),
                None => {
                    self.respond_err(conn, &id, "invalid", "`deadline_ms` must be a non-negative integer");
                    return false;
                }
            },
        };
        let params = match doc.get("params") {
            None | Some(Json::Null) => Json::Obj(Vec::new()),
            Some(obj @ Json::Obj(_)) => obj.clone(),
            Some(_) => {
                self.respond_err(conn, &id, "invalid", "`params` must be an object");
                return false;
            }
        };
        match method {
            "shutdown" => {
                self.stats.shutdown.fetch_add(1, Ordering::Relaxed);
                conn.write_line(&ok_response(&id, "{\"stopping\":true}"));
                self.stopping.store(true, Ordering::Release);
                true
            }
            // `stats` answers inline on the reader thread: it must stay
            // responsive for monitoring even when every worker is busy.
            "stats" => {
                self.stats.stats.fetch_add(1, Ordering::Relaxed);
                let result = self.stats_result();
                conn.write_line(&ok_response(&id, &result));
                false
            }
            // `health` is the supervisor/load-balancer probe: a small,
            // fixed-shape liveness summary, answered inline like
            // `stats` so it works even under full saturation.
            "health" => {
                self.stats.health.fetch_add(1, Ordering::Relaxed);
                let result = self.health_result();
                conn.write_line(&ok_response(&id, &result));
                false
            }
            "define_qualifiers" | "check" => {
                self.enqueue(conn, id, method.to_owned(), params, deadline_ms);
                false
            }
            // `reload` takes the worker queue like any mutating request:
            // the rebuild happens off the reader thread, and in-flight
            // requests ahead of it answer under the old registry.
            "reload" => {
                self.stats.reload.fetch_add(1, Ordering::Relaxed);
                self.enqueue(conn, id, method.to_owned(), params, deadline_ms);
                false
            }
            // `prove` goes through the single-flight table so identical
            // concurrent requests run the solver once.
            "prove" => {
                self.enqueue_prove(conn, id, params, deadline_ms);
                false
            }
            other => {
                self.respond_err(
                    conn,
                    &id,
                    "unknown-method",
                    &format!(
                        "unknown method `{other}` (expected define_qualifiers, check, \
                         prove, reload, stats, health, or shutdown)"
                    ),
                );
                false
            }
        }
    }

    /// Fairness + shedding gate, then hand the request to a worker.
    fn enqueue(
        self: &Arc<Server>,
        conn: &Arc<Conn>,
        id: String,
        method: String,
        params: Json,
        deadline_ms: Option<u64>,
    ) {
        if self.stopping() {
            self.respond_err(conn, &id, "shutting-down", "the server is draining");
            return;
        }
        if self.cfg.max_inflight > 0
            && conn.inflight.load(Ordering::Acquire) >= self.cfg.max_inflight as u64
        {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            self.respond_err(
                conn,
                &id,
                "overloaded",
                &format!(
                    "this connection already has {} request(s) in flight (limit {})",
                    conn.inflight.load(Ordering::Relaxed),
                    self.cfg.max_inflight
                ),
            );
            return;
        }
        conn.inflight.fetch_add(1, Ordering::AcqRel);
        self.stats.inflight.fetch_add(1, Ordering::AcqRel);
        let server = Arc::clone(self);
        let conn_job = Arc::clone(conn);
        let job_id = id.clone();
        let submitted = self.sched.submit(Box::new(move || {
            server.execute(&conn_job, &job_id, &method, &params, deadline_ms);
            conn_job.inflight.fetch_sub(1, Ordering::AcqRel);
            server.stats.inflight.fetch_sub(1, Ordering::AcqRel);
        }));
        if let Err(rejected) = submitted {
            conn.inflight.fetch_sub(1, Ordering::AcqRel);
            self.stats.inflight.fetch_sub(1, Ordering::AcqRel);
            let (code, message) = match rejected {
                Rejected::Overloaded => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    ("overloaded", "the server's request queue is full")
                }
                Rejected::Closed => ("shutting-down", "the server is draining"),
            };
            self.respond_err(conn, &id, code, message);
        }
    }

    /// The fingerprint under which a `prove` request deduplicates:
    /// FNV-1a over its *resolved* parameters (names in order, budget and
    /// retry overrides, jobs, cache flag, requested deadline) plus the
    /// define epoch. `None` when any parameter fails validation — such
    /// requests take the plain queue and get their structured error
    /// from the worker.
    fn prove_key(&self, params: &Json, deadline_ms: Option<u64>) -> Option<stq_logic::Fingerprint> {
        let mut canon = String::new();
        match params.get("names") {
            None | Some(Json::Null) => canon.push_str("names=all;"),
            Some(Json::Arr(items)) => {
                canon.push_str("names=");
                for item in items {
                    canon.push_str(item.as_str()?);
                    canon.push('\x1f');
                }
                canon.push(';');
            }
            Some(_) => return None,
        }
        let over = budget_override(params.get("budget")).ok()?;
        let _ = write!(
            canon,
            "budget={:?},{:?},{:?},{:?},{:?};",
            over.max_rounds, over.max_instantiations, over.max_clauses, over.max_decisions,
            over.timeout,
        );
        let retry = retry_override(self.cfg.retry, params.get("retry")).ok()?;
        let _ = write!(canon, "retry={},{};", retry.max_attempts, retry.factor);
        let jobs = match params.get("jobs") {
            None | Some(Json::Null) => self.cfg.prove_jobs,
            Some(v) => v.as_u64().filter(|n| *n >= 1)?.min(256) as usize,
        };
        let use_cache = match params.get("cache") {
            None | Some(Json::Null) => true,
            Some(v) => v.as_bool()?,
        };
        let _ = write!(
            canon,
            "jobs={jobs};cache={use_cache};deadline={deadline_ms:?};epoch={};",
            self.define_epoch.load(Ordering::Acquire),
        );
        Some(stq_logic::Fingerprint(fnv128(canon.as_bytes())))
    }

    /// Single-flight admission for `prove`: join an identical in-flight
    /// request as a waiter (no worker slot), or lead a fresh flight.
    fn enqueue_prove(
        self: &Arc<Server>,
        conn: &Arc<Conn>,
        id: String,
        params: Json,
        deadline_ms: Option<u64>,
    ) {
        let Some(key) = self.prove_key(&params, deadline_ms) else {
            // Unparseable parameters never coalesce; the plain queue's
            // worker renders the structured error.
            self.enqueue(conn, id, "prove".to_owned(), params, deadline_ms);
            return;
        };
        if self.stopping() {
            self.respond_err(conn, &id, "shutting-down", "the server is draining");
            return;
        }
        // The fairness gate counts waiters too: a waiter is a
        // submitted-but-unfinished request even though it occupies no
        // worker slot.
        if self.cfg.max_inflight > 0
            && conn.inflight.load(Ordering::Acquire) >= self.cfg.max_inflight as u64
        {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            self.respond_err(
                conn,
                &id,
                "overloaded",
                &format!(
                    "this connection already has {} request(s) in flight (limit {})",
                    conn.inflight.load(Ordering::Relaxed),
                    self.cfg.max_inflight
                ),
            );
            return;
        }
        let leads = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            conn.inflight.fetch_add(1, Ordering::AcqRel);
            self.stats.inflight.fetch_add(1, Ordering::AcqRel);
            match flights.get(&key) {
                Some(flight) => {
                    // Joining is only legal under the table lock — see
                    // `Flight` for the linearization argument.
                    let mut waiters = flight.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters.push(Waiter { conn: Arc::clone(conn), id, deadline_ms });
                    false
                }
                None => {
                    let waiter = Waiter { conn: Arc::clone(conn), id: id.clone(), deadline_ms };
                    flights
                        .insert(key, Arc::new(Flight { params, waiters: Mutex::new(vec![waiter]) }));
                    true
                }
            }
        };
        if !leads {
            return;
        }
        let server = Arc::clone(self);
        if let Err(rejected) = self.sched.submit(Box::new(move || server.run_flight(key))) {
            // Could not place the leader: dissolve the flight and shed
            // every member that managed to join in the meantime.
            let flight = {
                let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                flights.remove(&key)
            };
            let (code, message) = match rejected {
                Rejected::Overloaded => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    ("overloaded", "the server's request queue is full")
                }
                Rejected::Closed => ("shutting-down", "the server is draining"),
            };
            if let Some(flight) = flight {
                let members: Vec<Waiter> = {
                    let mut waiters = flight.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters.drain(..).collect()
                };
                for w in members {
                    self.respond_err(&w.conn, &w.id, code, message);
                    self.finish_member(&w.conn);
                }
            }
        }
    }

    /// Worker-side single-flight driver: run the solve as the current
    /// leader, fan a conclusive answer out to every member, and hand off
    /// (re-running) when a leader is interrupted or gone.
    fn run_flight(self: &Arc<Server>, key: stq_logic::Fingerprint) {
        loop {
            let flight = {
                let flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                match flights.get(&key) {
                    Some(f) => Arc::clone(f),
                    None => return,
                }
            };
            // Current leader = first member whose client still exists;
            // members that vanished while queued are retired here.
            let leader = {
                let mut waiters = flight.waiters.lock().unwrap_or_else(|e| e.into_inner());
                waiters.retain(|w| {
                    if w.conn.alive() {
                        true
                    } else {
                        self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                        self.finish_member(&w.conn);
                        false
                    }
                });
                waiters.first().map(|w| (Arc::clone(&w.conn), w.id.clone(), w.deadline_ms))
            };
            let Some((conn, id, deadline_ms)) = leader else {
                let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                flights.remove(&key);
                return;
            };
            let token = match deadline_ms {
                Some(ms) => conn.token.child_with_deadline_in(Duration::from_millis(ms)),
                None => conn.token.child(),
            };
            let outcome = self.do_prove(&flight.params, &token);
            match outcome {
                Ok(partial) if partial.interrupted => {
                    // An interrupted partial is an artifact of *this
                    // leader's* deadline or disconnect — answer it alone
                    // and promote the next surviving member, which
                    // re-runs the solve under its own token.
                    if conn.alive() {
                        conn.write_line(&ok_response(&id, &partial.json));
                    } else {
                        self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    self.finish_member(&conn);
                    let mut waiters = flight.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    if !waiters.is_empty() {
                        waiters.remove(0);
                    }
                }
                conclusive => {
                    // Conclusive verdict or deterministic error: remove
                    // the flight first (after this no new member can
                    // join — joins require the table entry), then fan
                    // the byte-identical payload out under each
                    // member's own id.
                    let flight = {
                        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                        flights.remove(&key)
                    };
                    let members: Vec<Waiter> = match &flight {
                        Some(f) => {
                            let mut waiters =
                                f.waiters.lock().unwrap_or_else(|e| e.into_inner());
                            waiters.drain(..).collect()
                        }
                        None => Vec::new(),
                    };
                    for (idx, w) in members.iter().enumerate() {
                        if w.conn.alive() {
                            match &conclusive {
                                Ok(out) => w.conn.write_line(&ok_response(&w.id, &out.json)),
                                Err((code, message)) => {
                                    self.respond_err(&w.conn, &w.id, code, message);
                                }
                            }
                            if idx > 0 {
                                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        self.finish_member(&w.conn);
                    }
                    return;
                }
            }
        }
    }

    /// Releases one flight member's in-flight accounting.
    fn finish_member(&self, conn: &Conn) {
        conn.inflight.fetch_sub(1, Ordering::AcqRel);
        self.stats.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Runs one request on a worker thread.
    fn execute(
        self: &Arc<Server>,
        conn: &Arc<Conn>,
        id: &str,
        method: &str,
        params: &Json,
        deadline_ms: Option<u64>,
    ) {
        // The client vanished while this job sat in the queue: its
        // token is cancelled, nobody is listening — skip the work.
        if !conn.alive() {
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let token = match deadline_ms {
            Some(ms) => conn.token.child_with_deadline_in(Duration::from_millis(ms)),
            None => conn.token.child(),
        };
        let outcome = match method {
            "define_qualifiers" => self.do_define(params),
            "check" => self.do_check(params),
            "reload" => self.do_reload(),
            // Only reachable for proves that failed key resolution (the
            // deduplicated path is `run_flight`).
            "prove" => self.do_prove(params, &token).map(|p| p.json),
            _ => Err(("invalid", format!("method `{method}` is not a worker method"))),
        };
        match outcome {
            Ok(result) => conn.write_line(&ok_response(id, &result)),
            Err((code, message)) => self.respond_err(conn, id, code, &message),
        }
    }

    fn respond_err(&self, conn: &Conn, id: &str, code: &str, message: &str) {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        conn.write_line(&err_response(id, code, message));
    }

    // ----- method handlers -----

    /// `define_qualifiers {source}`: transactional — the new
    /// definitions land all-or-nothing, so a bad batch cannot leave the
    /// resident registry half-updated for other requests.
    fn do_define(&self, params: &Json) -> Result<String, ServeError> {
        let Some(source) = params.get("source").and_then(Json::as_str) else {
            return Err(("invalid", "define_qualifiers needs a string `source`".into()));
        };
        self.stats.define.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.session.write().unwrap_or_else(|e| e.into_inner());
        let mut next = guard.clone();
        let names = next
            .define_qualifiers(source)
            .map_err(|e| ("input", e.to_string()))?;
        let wf = next.check_well_formed();
        if wf.has_errors() {
            return Err(("input", format!("ill-formed qualifier definitions:\n{wf}")));
        }
        *guard = next;
        // Invalidate every single-flight key: proves after this
        // definition must not coalesce with proves from before it.
        self.define_epoch.fetch_add(1, Ordering::AcqRel);
        let defined: Vec<String> = names
            .iter()
            .map(|n| format!("\"{}\"", escape(&n.to_string())))
            .collect();
        Ok(format!("{{\"defined\":[{}]}}", defined.join(",")))
    }

    /// `reload {}`: re-parse the qualifier libraries this server was
    /// started with (`--quals`, [`ServeConfig::qual_files`]) through the
    /// same transactional discipline as `define_qualifiers`. The fresh
    /// session — builtins plus every library, in load order — is built
    /// and validated *without* the session write lock, so in-flight
    /// requests keep answering under the old registry; the swap itself
    /// is a brief exclusive section, followed by a define-epoch bump so
    /// no prove coalesces across the swap. Any failure (unreadable
    /// file, parse error, ill-formed definitions) rolls back: the
    /// resident registry is untouched, `reload_failures` ticks, and the
    /// client gets a structured `input` error.
    ///
    /// Note the rebuild starts from builtins + the configured files:
    /// qualifiers added dynamically via `define_qualifiers` since
    /// startup are dropped by a reload (they are not in any library).
    fn do_reload(&self) -> Result<String, ServeError> {
        let built = (|| -> Result<(Session, Vec<String>), String> {
            let mut next = Session::with_builtins();
            let mut files = Vec::new();
            for path in &self.cfg.qual_files {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                next.define_qualifiers(&source)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                files.push(path.display().to_string());
            }
            let wf = next.check_well_formed();
            if wf.has_errors() {
                return Err(format!("ill-formed qualifier definitions:\n{wf}"));
            }
            Ok((next, files))
        })();
        match built {
            Ok((next, files)) => {
                let qualifiers = next.registry().iter().count();
                {
                    let mut guard = self.session.write().unwrap_or_else(|e| e.into_inner());
                    *guard = next;
                }
                self.define_epoch.fetch_add(1, Ordering::AcqRel);
                self.stats.reloads.fetch_add(1, Ordering::Relaxed);
                let listed: Vec<String> =
                    files.iter().map(|f| format!("\"{}\"", escape(f))).collect();
                Ok(format!(
                    "{{\"reloaded\":true,\"files\":[{}],\"qualifiers\":{qualifiers},\
                     \"epoch\":{}}}",
                    listed.join(","),
                    self.define_epoch.load(Ordering::Acquire),
                ))
            }
            Err(message) => {
                self.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                Err(("input", format!("reload rolled back: {message}")))
            }
        }
    }

    /// Spawns the `--watch-libs` poller: every 200ms, stat the
    /// configured qualifier libraries and run a reload when any
    /// modification time or length changes. A failing reload rolls back
    /// (visible as `reload_failures` in `stats`) and is retried on the
    /// next observed change. The thread exits once the server starts
    /// stopping. Returns `None` when watching is off or there is
    /// nothing to watch.
    pub fn spawn_lib_watcher(self: &Arc<Server>) -> Option<std::thread::JoinHandle<()>> {
        if !self.cfg.watch_libs || self.cfg.qual_files.is_empty() {
            return None;
        }
        let server = Arc::clone(self);
        type Snap = Vec<Option<(std::time::SystemTime, u64)>>;
        let snapshot = |paths: &[PathBuf]| -> Snap {
            paths
                .iter()
                .map(|p| {
                    let meta = std::fs::metadata(p).ok()?;
                    Some((meta.modified().ok()?, meta.len()))
                })
                .collect()
        };
        // The baseline snapshot is taken *before* the thread exists, so
        // a modification racing the spawn is still detected.
        let mut last = snapshot(&self.cfg.qual_files);
        Some(std::thread::spawn(move || {
            while !server.stopping() {
                std::thread::sleep(Duration::from_millis(200));
                let now = snapshot(&server.cfg.qual_files);
                if now != last {
                    last = now;
                    let _ = server.do_reload();
                }
            }
        }))
    }

    /// `check {source, flow_sensitive?}`: parse (error-resilient, so a
    /// typo still yields diagnostics for later declarations) and
    /// typecheck against the resident registry.
    fn do_check(&self, params: &Json) -> Result<String, ServeError> {
        let Some(source) = params.get("source").and_then(Json::as_str) else {
            return Err(("invalid", "check needs a string `source`".into()));
        };
        let flow_sensitive = match params.get("flow_sensitive") {
            None | Some(Json::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or(("invalid", "`flow_sensitive` must be a boolean".to_owned()))?,
        };
        self.stats.check.fetch_add(1, Ordering::Relaxed);
        let session = self.session.read().unwrap_or_else(|e| e.into_inner());
        let (program, syntax_errors) = session.parse_resilient(source);
        let result = session.check_with(
            &program,
            crate::CheckOptions { flow_sensitive },
        );
        let syntax: Vec<String> = syntax_errors
            .iter()
            .map(|e| format!("\"{}\"", escape(&e.to_string())))
            .collect();
        let diags: Vec<String> = result
            .diags
            .iter()
            .map(|d| format!("\"{}\"", escape(&d.render(source))))
            .collect();
        Ok(format!(
            "{{\"clean\":{},\"syntax_errors\":[{}],\"diagnostics\":[{}],\"stats\":{}}}",
            result.is_clean() && syntax_errors.is_empty(),
            syntax.join(","),
            diags.join(","),
            check_stats_json(&result.stats),
        ))
    }

    /// `prove {names?, budget?, retry?, jobs?, cache?}` under the
    /// request token. Interrupted runs (deadline, disconnect, SIGINT)
    /// return a *partial* report with `"interrupted":true`; conclusive
    /// verdicts reached before the stop are kept and cached. The
    /// returned [`ProveOutput`] carries the interrupted flag alongside
    /// the payload so single-flight leaders know whether to fan out.
    fn do_prove(&self, params: &Json, token: &CancelToken) -> Result<ProveOutput, ServeError> {
        let names: Option<Vec<&str>> = match params.get("names") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(s) => out.push(s),
                        None => {
                            return Err((
                                "invalid",
                                "`names` must be an array of strings".to_owned(),
                            ))
                        }
                    }
                }
                Some(out)
            }
            Some(_) => return Err(("invalid", "`names` must be an array of strings".to_owned())),
        };
        let budget = self.cfg.budget.overridden(budget_override(params.get("budget"))?);
        let retry = retry_override(self.cfg.retry, params.get("retry"))?;
        let jobs = match params.get("jobs") {
            None | Some(Json::Null) => self.cfg.prove_jobs,
            Some(v) => v
                .as_u64()
                .filter(|n| *n >= 1)
                .ok_or(("invalid", "`jobs` must be a positive integer".to_owned()))?
                .min(256) as usize,
        };
        let use_cache = match params.get("cache") {
            None | Some(Json::Null) => true,
            Some(v) => v
                .as_bool()
                .ok_or(("invalid", "`cache` must be a boolean".to_owned()))?,
        };
        self.stats.prove.fetch_add(1, Ordering::Relaxed);
        let cache = use_cache.then_some(&self.cache);
        let session = self.session.read().unwrap_or_else(|e| e.into_inner());
        let report: SoundnessReport = match &names {
            Some(ns) => session
                .prove_named_cancellable(ns, budget, retry, jobs, cache, token)
                .map_err(|e| ("input", e))?,
            None => session.prove_all_sound_cancellable(budget, retry, jobs, cache, token),
        };
        drop(session);
        if report.interrupted() {
            self.stats.interrupted.fetch_add(1, Ordering::Relaxed);
        }
        // Persist conclusive verdicts eagerly, not just at shutdown: a
        // crashed (or SIGKILLed) worker's successor then reloads a warm
        // journal, which is what lets a supervised restart keep the
        // cache. `persist_skips` makes the nothing-dirty case cheap.
        if self.cfg.cache_dir.is_some() {
            let _ = self.cache.persist();
        }
        let quals: Vec<String> = report.reports.iter().map(qual_report_json).collect();
        let json = format!(
            "{{\"all_sound\":{},\"interrupted\":{},\"skipped\":{},\
             \"qualifiers\":[{}],\"totals\":{},\"cache\":{}}}",
            report.all_sound(),
            report.interrupted(),
            report.skipped_count(),
            quals.join(","),
            crate::reportjson::prover_stats_json(&report.totals),
            self.cache_json(),
        );
        Ok(ProveOutput { json, interrupted: report.interrupted() })
    }

    fn cache_json(&self) -> String {
        format!(
            "{{\"entries\":{},\"hits\":{},\"misses\":{},\"follow_hits\":{},\
             \"invalidations\":{},\"persist_skips\":{}}}",
            self.cache.len(),
            self.cache.hits(),
            self.cache.misses(),
            self.cache.follow_hits(),
            self.cache.invalidations(),
            self.cache.persist_skips(),
        )
    }

    fn stats_result(&self) -> String {
        let s = &self.stats;
        let qualifiers = self
            .session
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .registry()
            .iter()
            .count();
        let total = s.define.load(Ordering::Relaxed)
            + s.check.load(Ordering::Relaxed)
            + s.prove.load(Ordering::Relaxed)
            + s.reload.load(Ordering::Relaxed)
            + s.stats.load(Ordering::Relaxed)
            + s.health.load(Ordering::Relaxed)
            + s.shutdown.load(Ordering::Relaxed);
        let netfault = match &self.netfault {
            Some(inj) => format!(
                "{{\"planned\":{},\"injected\":{},\"ops\":{}}}",
                inj.planned(),
                inj.injected(),
                inj.ops(),
            ),
            None => "null".to_owned(),
        };
        format!(
            "{{\"uptime_ms\":{},\"jobs\":{},\"qualifiers\":{qualifiers},\
             \"connections\":{},\"disconnects\":{},\"open_connections\":{},\
             \"requests\":{{\"total\":{total},\"define_qualifiers\":{},\"check\":{},\
             \"prove\":{},\"reload\":{},\"stats\":{},\"health\":{},\"shutdown\":{}}},\
             \"reloads\":{},\"reload_failures\":{},\"epoch\":{},\
             \"inflight\":{},\"queued\":{},\"shed\":{},\"cancelled\":{},\
             \"interrupted\":{},\"errors\":{},\"panics\":{},\
             \"oversized\":{},\"bad_utf8\":{},\"idle_closed\":{},\
             \"dedup_hits\":{},\
             \"reactor\":{{\"polls\":{},\"wakeups\":{}}},\
             \"netfault\":{netfault},\"cache\":{}}}",
            crate::reportjson::json_ms(s.started.elapsed()),
            self.cfg.jobs,
            s.connections.load(Ordering::Relaxed),
            s.disconnects.load(Ordering::Relaxed),
            s.open_connections.load(Ordering::Relaxed),
            s.define.load(Ordering::Relaxed),
            s.check.load(Ordering::Relaxed),
            s.prove.load(Ordering::Relaxed),
            s.reload.load(Ordering::Relaxed),
            s.stats.load(Ordering::Relaxed),
            s.health.load(Ordering::Relaxed),
            s.shutdown.load(Ordering::Relaxed),
            s.reloads.load(Ordering::Relaxed),
            s.reload_failures.load(Ordering::Relaxed),
            self.define_epoch.load(Ordering::Acquire),
            s.inflight.load(Ordering::Relaxed),
            self.sched.queued(),
            s.shed.load(Ordering::Relaxed),
            s.cancelled.load(Ordering::Relaxed),
            s.interrupted.load(Ordering::Relaxed),
            s.errors.load(Ordering::Relaxed),
            self.sched.panics(),
            s.oversized.load(Ordering::Relaxed),
            s.bad_utf8.load(Ordering::Relaxed),
            s.idle_closed.load(Ordering::Relaxed),
            s.dedup_hits.load(Ordering::Relaxed),
            s.reactor_polls.load(Ordering::Relaxed),
            s.reactor_wakeups.load(Ordering::Relaxed),
            self.cache_json(),
        )
    }

    /// The `health` response: a small fixed-shape liveness summary for
    /// supervisors and probes. Deliberately cheaper and more stable
    /// than `stats` — no per-method counters, no qualifier registry
    /// walk beyond what `cache_json` already does.
    fn health_result(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"status\":\"ok\",\"uptime_ms\":{},\"workers\":{},\
             \"queued\":{},\"inflight\":{},\"stopping\":{},\"cache\":{}}}",
            crate::reportjson::json_ms(s.started.elapsed()),
            self.cfg.jobs,
            self.sched.queued(),
            s.inflight.load(Ordering::Relaxed),
            self.stopping(),
            self.cache_json(),
        )
    }
}

fn budget_override(v: Option<&Json>) -> Result<BudgetOverride, ServeError> {
    let mut over = BudgetOverride::default();
    let Some(obj) = v else { return Ok(over) };
    if obj.is_null() {
        return Ok(over);
    }
    let Json::Obj(members) = obj else {
        return Err(("invalid", "`budget` must be an object".to_owned()));
    };
    for (key, value) in members {
        let n = value.as_u64().ok_or((
            "invalid",
            format!("budget field `{key}` must be a non-negative integer"),
        ))?;
        match key.as_str() {
            "max_rounds" => over.max_rounds = Some(n as usize),
            "max_instantiations" => over.max_instantiations = Some(n as usize),
            "max_clauses" => over.max_clauses = Some(n as usize),
            "max_decisions" => over.max_decisions = Some(n),
            "timeout_ms" => over.timeout = Some(Duration::from_millis(n)),
            other => {
                return Err(("invalid", format!("unknown budget field `{other}`")));
            }
        }
    }
    Ok(over)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    fn spawn_server(cfg: ServeConfig) -> (Arc<Server>, CancelToken) {
        let cancel = CancelToken::new();
        let server = Arc::new(
            Server::new(Session::with_builtins(), cfg, cancel.clone()).expect("in-memory server"),
        );
        (server, cancel)
    }

    /// Connects a client to `server` over a socketpair; the server side
    /// runs on its own thread like a real accepted connection.
    fn connect(server: &Arc<Server>) -> (UnixStream, std::thread::JoinHandle<()>) {
        let (client, daemon_side) = UnixStream::pair().expect("socketpair");
        let srv = Arc::clone(server);
        let handle = std::thread::spawn(move || srv.serve_stream(daemon_side));
        (client, handle)
    }

    fn roundtrip(client: &mut UnixStream, reader: &mut impl BufRead, line: &str) -> Json {
        client
            .write_all(format!("{line}\n").as_bytes())
            .expect("request written");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response read");
        Json::parse(response.trim()).expect("response is json")
    }

    #[test]
    fn prove_round_trip_hits_cache_on_repeat() {
        let (server, _cancel) = spawn_server(ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let first = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":1,"method":"prove","params":{"names":["pos"]}}"#,
        );
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let result = first.get("result").expect("result");
        assert_eq!(result.get("all_sound").and_then(Json::as_bool), Some(true));
        assert_eq!(result.get("interrupted").and_then(Json::as_bool), Some(false));

        // The same obligations again: every proof must come from the
        // resident cache (zero new misses).
        let misses_before = server.cache.misses();
        let second = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":2,"method":"prove","params":{"names":["pos"]}}"#,
        );
        assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(server.cache.misses(), misses_before, "warm repeat missed");
        assert!(server.cache.hits() > 0, "warm repeat never hit the cache");

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn malformed_and_invalid_requests_get_structured_errors() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let parse = roundtrip(&mut client, &mut reader, "{not json");
        assert_eq!(parse.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parse.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("parse")
        );

        let noid = roundtrip(&mut client, &mut reader, r#"{"method":"stats"}"#);
        assert_eq!(
            noid.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("invalid")
        );

        let unknown = roundtrip(&mut client, &mut reader, r#"{"id":7,"method":"frobnicate"}"#);
        assert_eq!(unknown.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            unknown.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("unknown-method")
        );

        // The connection (and server) survived all three.
        let stats = roundtrip(&mut client, &mut reader, r#"{"id":8,"method":"stats"}"#);
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(server.stats.errors.load(Ordering::Relaxed), 3);

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn define_is_transactional_under_bad_input() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let quals_before = server.stats_result();
        let before = Json::parse(&quals_before).unwrap().get("qualifiers").unwrap().as_u64();

        let bad = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":1,"method":"define_qualifiers","params":{"source":"value qualifier broken("}}"#,
        );
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            bad.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("input")
        );

        let after = Json::parse(&server.stats_result())
            .unwrap()
            .get("qualifiers")
            .unwrap()
            .as_u64();
        assert_eq!(before, after, "a failed define mutated the registry");

        let good = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":2,"method":"define_qualifiers","params":{"source":"value qualifier gtzero(int Expr E) case E of decl int Const C: C, where C > 0 invariant value(E) > 0"}}"#,
        );
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        let defined = good.get("result").and_then(|r| r.get("defined"));
        assert_eq!(
            defined.and_then(Json::as_array).map(<[Json]>::len),
            Some(1),
            "defined list: {defined:?}"
        );

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    const GOOD_LIB: &str = "value qualifier nonneg(int Expr E)\n\
         case E of\n\
             decl int Const C: C, where C >= 0\n\
           | decl int Expr E1, E2: E1 + E2, where nonneg(E1) && nonneg(E2)\n\
         invariant value(E) >= 0";

    fn lib_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-reload-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("lib dir");
        d
    }

    #[test]
    fn reload_reparses_libraries_and_bumps_the_epoch() {
        let dir = lib_dir("swap");
        let lib = dir.join("quals.stq");
        std::fs::write(&lib, GOOD_LIB).unwrap();
        let (server, _cancel) = spawn_server(ServeConfig {
            qual_files: vec![lib.clone()],
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let quals = |server: &Arc<Server>| {
            Json::parse(&server.stats_result())
                .unwrap()
                .get("qualifiers")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        let baseline = quals(&server);

        let first = roundtrip(&mut client, &mut reader, r#"{"id":1,"method":"reload"}"#);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true), "{first}");
        let result = first.get("result").expect("result");
        assert_eq!(result.get("reloaded").and_then(Json::as_bool), Some(true));
        assert_eq!(result.get("epoch").and_then(Json::as_u64), Some(1));
        // The library was not loaded at startup here, so the reload
        // *added* nonneg over the builtins.
        assert_eq!(quals(&server), baseline + 1);

        // The library grows a second qualifier; the next reload picks
        // it up and bumps the epoch again.
        std::fs::write(
            &lib,
            format!(
                "{GOOD_LIB}\nvalue qualifier gtzero(int Expr E) \
                 case E of decl int Const C: C, where C > 0 invariant value(E) > 0"
            ),
        )
        .unwrap();
        let second = roundtrip(&mut client, &mut reader, r#"{"id":2,"method":"reload"}"#);
        assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            second.get("result").and_then(|r| r.get("epoch")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(quals(&server), baseline + 2);

        let stats = Json::parse(&server.stats_result()).unwrap();
        assert_eq!(stats.get("reloads").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("reload_failures").and_then(Json::as_u64), Some(0));

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_of_a_broken_library_rolls_back() {
        let dir = lib_dir("rollback");
        let lib = dir.join("quals.stq");
        std::fs::write(&lib, GOOD_LIB).unwrap();
        let (server, _cancel) = spawn_server(ServeConfig {
            qual_files: vec![lib.clone()],
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let good = roundtrip(&mut client, &mut reader, r#"{"id":1,"method":"reload"}"#);
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        let registry_before = Json::parse(&server.stats_result())
            .unwrap()
            .get("qualifiers")
            .unwrap()
            .as_u64();

        // The library breaks on disk; the reload must answer a
        // structured `input` error and leave the registry (and epoch)
        // exactly as they were.
        std::fs::write(&lib, "value qualifier broken(").unwrap();
        let bad = roundtrip(&mut client, &mut reader, r#"{"id":2,"method":"reload"}"#);
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            bad.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("input")
        );
        let message = bad
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("");
        assert!(message.contains("rolled back"), "{message}");

        let stats = Json::parse(&server.stats_result()).unwrap();
        assert_eq!(stats.get("qualifiers").unwrap().as_u64(), registry_before);
        assert_eq!(stats.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("reloads").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("reload_failures").and_then(Json::as_u64), Some(1));

        // The old registry still serves: nonneg (from the first reload)
        // proves warm.
        let prove = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":3,"method":"prove","params":{"names":["nonneg"]}}"#,
        );
        assert_eq!(prove.get("ok").and_then(Json::as_bool), Some(true));

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_libs_reloads_on_modification() {
        let dir = lib_dir("watch");
        let lib = dir.join("quals.stq");
        std::fs::write(&lib, GOOD_LIB).unwrap();
        let (server, _cancel) = spawn_server(ServeConfig {
            qual_files: vec![lib.clone()],
            watch_libs: true,
            ..ServeConfig::default()
        });
        let watcher = server.spawn_lib_watcher().expect("watcher spawned");

        // Rewrite the library (new length, new mtime); the poller must
        // notice and reload without any protocol request.
        std::fs::write(
            &lib,
            format!(
                "{GOOD_LIB}\nvalue qualifier gtzero(int Expr E) \
                 case E of decl int Const C: C, where C > 0 invariant value(E) > 0"
            ),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let stats = Json::parse(&server.stats_result()).unwrap();
            if stats.get("reloads").and_then(Json::as_u64).unwrap_or(0) >= 1 {
                assert_eq!(
                    stats.get("requests").and_then(|r| r.get("reload")).and_then(Json::as_u64),
                    Some(0),
                    "a watcher reload is not a protocol request"
                );
                break;
            }
            assert!(Instant::now() < deadline, "watcher never reloaded");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.stopping.store(true, Ordering::Release);
        watcher.join().expect("watcher thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_deadline_interrupts_without_poisoning_the_cache() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        let rushed = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":1,"method":"prove","deadline_ms":0,"params":{"names":["pos"]}}"#,
        );
        assert_eq!(rushed.get("ok").and_then(Json::as_bool), Some(true));
        let result = rushed.get("result").expect("result");
        assert_eq!(
            result.get("interrupted").and_then(Json::as_bool),
            Some(true),
            "a 0ms deadline must interrupt: {result}"
        );

        // The interrupted run must not have recorded junk: a follow-up
        // *without* a deadline proves soundly from scratch.
        let calm = roundtrip(
            &mut client,
            &mut reader,
            r#"{"id":2,"method":"prove","params":{"names":["pos"]}}"#,
        );
        let result = calm.get("result").expect("result");
        assert_eq!(result.get("all_sound").and_then(Json::as_bool), Some(true));
        assert_eq!(result.get("interrupted").and_then(Json::as_bool), Some(false));
        assert_eq!(server.stats.interrupted.load(Ordering::Relaxed), 1);

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn per_connection_inflight_cap_sheds_excess_requests() {
        // One worker and a cap of 1 in-flight request per connection:
        // submitting two slow proves back-to-back must shed the second.
        let (server, _cancel) = spawn_server(ServeConfig {
            jobs: 1,
            max_inflight: 1,
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));

        // `cache:false` keeps the first prove slow enough to still be
        // running (or queued) when the second arrives.
        client
            .write_all(
                b"{\"id\":1,\"method\":\"prove\",\"params\":{\"cache\":false}}\n\
                  {\"id\":2,\"method\":\"prove\",\"params\":{\"cache\":false}}\n",
            )
            .expect("requests written");
        let mut shed = None;
        let mut completed = 0;
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response");
            let response = Json::parse(line.trim()).expect("json");
            if response.get("ok").and_then(Json::as_bool) == Some(false) {
                shed = Some(response);
            } else {
                completed += 1;
            }
        }
        let shed = shed.expect("one of the two must be shed");
        assert_eq!(shed.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(
            shed.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("overloaded")
        );
        assert_eq!(completed, 1);
        assert_eq!(server.stats.shed.load(Ordering::Relaxed), 1);

        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn disconnect_cancels_queued_work() {
        // A single worker pinned by a slow request, plus queued work
        // from a client that vanishes: the queued jobs are skipped.
        let (server, _cancel) = spawn_server(ServeConfig {
            jobs: 1,
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        client
            .write_all(
                b"{\"id\":1,\"method\":\"prove\",\"params\":{\"cache\":false}}\n\
                  {\"id\":2,\"method\":\"prove\",\"params\":{\"cache\":false}}\n\
                  {\"id\":3,\"method\":\"prove\",\"params\":{\"cache\":false}}\n",
            )
            .expect("requests written");
        // Hang up without reading a single response.
        drop(client);
        handle.join().expect("connection thread");
        server.sched.close_and_drain();
        assert!(
            server.stats.cancelled.load(Ordering::Relaxed) > 0,
            "no queued job noticed the disconnect"
        );
        assert_eq!(server.stats.disconnects.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_request_stops_the_connection() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let bye = roundtrip(&mut client, &mut reader, r#"{"id":9,"method":"shutdown"}"#);
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            bye.get("result").and_then(|r| r.get("stopping")).and_then(Json::as_bool),
            Some(true)
        );
        handle.join().expect("connection thread ended");
        assert!(server.stopping());
        assert_eq!(server.finish(), ShutdownKind::Requested);
    }

    #[test]
    fn health_answers_inline_with_a_fixed_shape() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let health = roundtrip(&mut client, &mut reader, r#"{"id":1,"method":"health"}"#);
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        let result = health.get("result").expect("result");
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("ok"),
            "health reports ok while serving"
        );
        assert_eq!(result.get("stopping").and_then(Json::as_bool), Some(false));
        assert!(result.get("uptime_ms").is_some());
        assert!(result.get("workers").and_then(Json::as_u64).is_some());
        assert!(result.get("cache").is_some());
        // And the probe is counted in `stats`.
        let stats = roundtrip(&mut client, &mut reader, r#"{"id":2,"method":"stats"}"#);
        let requests = stats.get("result").and_then(|r| r.get("requests")).expect("requests");
        assert_eq!(requests.get("health").and_then(Json::as_u64), Some(1));
        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn oversized_line_is_rejected_and_the_connection_survives() {
        let (server, _cancel) = spawn_server(ServeConfig {
            max_line_bytes: 64,
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        // One giant line, well past the cap, then a legitimate request.
        let huge = format!("{{\"id\":1,\"method\":\"{}\"}}", "x".repeat(4096));
        let err = roundtrip(&mut client, &mut reader, &huge);
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("input"),
            "oversized lines draw a structured `input` error: {err}"
        );
        let after = roundtrip(&mut client, &mut reader, r#"{"id":2,"method":"stats"}"#);
        assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(after.get("id").and_then(Json::as_u64), Some(2), "connection survives");
        assert_eq!(
            after.get("result").and_then(|r| r.get("oversized")).and_then(Json::as_u64),
            Some(1)
        );
        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn invalid_utf8_line_is_rejected_and_the_connection_survives() {
        let (server, _cancel) = spawn_server(ServeConfig::default());
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        client
            .write_all(b"{\"id\":1,\"method\":\"stats\xFF\xFE\"}\n")
            .expect("bytes written");
        let mut response = String::new();
        reader.read_line(&mut response).expect("response read");
        let err = Json::parse(response.trim()).expect("response is json");
        assert_eq!(
            err.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("input"),
            "invalid UTF-8 draws a structured `input` error: {err}"
        );
        let after = roundtrip(&mut client, &mut reader, r#"{"id":2,"method":"stats"}"#);
        assert_eq!(after.get("id").and_then(Json::as_u64), Some(2), "connection survives");
        assert_eq!(
            after.get("result").and_then(|r| r.get("bad_utf8")).and_then(Json::as_u64),
            Some(1)
        );
        drop(reader);
        drop(client);
        handle.join().expect("connection thread");
    }

    #[test]
    fn idle_connections_are_closed_once_quiet() {
        let (server, _cancel) = spawn_server(ServeConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        });
        let (mut client, handle) = connect(&server);
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let first = roundtrip(&mut client, &mut reader, r#"{"id":1,"method":"stats"}"#);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        // Stay silent past the idle window: the daemon hangs up.
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("clean EOF");
        assert_eq!(n, 0, "the daemon closes an idle connection");
        handle.join().expect("connection thread");
        assert_eq!(server.stats.idle_closed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn armed_netfault_still_yields_attributed_answers_via_retries() {
        use stq_util::netfault::NetFaultPlan;
        // Faults on every early response write; the in-process client
        // below is the resilient one from `crate::client`.
        let plan = NetFaultPlan::seeded(42, 6, 12);
        assert!(!plan.is_empty());
        let cancel = CancelToken::new();
        let server = Arc::new(
            Server::new(
                Session::with_builtins(),
                ServeConfig {
                    netfault: Some(plan),
                    ..ServeConfig::default()
                },
                cancel.clone(),
            )
            .expect("server"),
        );
        let socket = std::env::temp_dir()
            .join(format!("stqc-netfault-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let run = {
            let server = Arc::clone(&server);
            let socket = socket.clone();
            std::thread::spawn(move || server.run_unix(&socket))
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::os::unix::net::UnixStream::connect(&socket).is_err() {
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut client = crate::client::Client::new(crate::client::ClientConfig {
            endpoints: vec![crate::client::Endpoint::Unix(socket.clone())],
            connect_timeout: Duration::from_secs(5),
            call_deadline: Some(Duration::from_secs(30)),
            max_retries: 32,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(10),
            seed: 3,
        });
        for i in 0..10 {
            let out = client
                .call("stats", None, None)
                .unwrap_or_else(|e| panic!("request {i} not healed: {e}"));
            assert_eq!(out.doc.get("ok").and_then(Json::as_bool), Some(true));
        }
        let injector = server.netfault.as_ref().expect("injector armed");
        assert!(
            injector.injected() > 0,
            "ten faulted round-trips must actually draw faults"
        );
        client.call("shutdown", None, None).expect("shutdown");
        run.join().expect("run thread").expect("run result");
        let _ = std::fs::remove_file(&socket);
    }

    /// Waits until something is listening on `socket`.
    fn await_bind(socket: &std::path::Path) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::os::unix::net::UnixStream::connect(socket).is_err() {
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn socket_lock_excludes_concurrent_daemons_on_one_path() {
        let socket = std::env::temp_dir()
            .join(format!("stqc-socklock-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let _ = std::fs::remove_file(socklock::lock_path(&socket));
        let (server, cancel) = spawn_server(ServeConfig::default());
        let run = {
            let server = Arc::clone(&server);
            let socket = socket.clone();
            std::thread::spawn(move || server.run_unix(&socket))
        };
        await_bind(&socket);

        // While the daemon serves, the lock is held: a rival cannot take
        // it, so the probe → unlink → rebind reclaim sequence can never
        // start against a live socket.
        let contended = socklock::SocketLock::acquire(&socket);
        assert!(
            contended.is_err(),
            "a serving daemon must hold its socket lock exclusively"
        );
        // And a full second daemon on the same path fails outright.
        let (rival, _rival_cancel) = spawn_server(ServeConfig::default());
        assert!(
            rival.run_unix(&socket).is_err(),
            "two daemons must not serve one socket path"
        );

        cancel.cancel();
        run.join().expect("run thread").expect("clean shutdown");
        // The lock is released with the daemon; the path is reusable.
        let reacquired = socklock::SocketLock::acquire(&socket);
        assert!(reacquired.is_ok(), "lock must be free after shutdown");
        drop(reacquired);
        let _ = std::fs::remove_file(socklock::lock_path(&socket));
    }

    #[test]
    fn stale_socket_file_is_reclaimed_under_the_lock() {
        let socket = std::env::temp_dir()
            .join(format!("stqc-stale-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        // A dead daemon's leftovers: bind then drop the listener, which
        // leaves the socket file on disk with nothing answering it.
        drop(std::os::unix::net::UnixListener::bind(&socket).expect("stale bind"));
        assert!(socket.exists(), "stale socket file is the precondition");

        let (server, cancel) = spawn_server(ServeConfig::default());
        let run = {
            let server = Arc::clone(&server);
            let socket = socket.clone();
            std::thread::spawn(move || server.run_unix(&socket))
        };
        await_bind(&socket);
        let mut client = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let health = roundtrip(&mut client, &mut reader, r#"{"id":1,"method":"health"}"#);
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));

        cancel.cancel();
        run.join().expect("run thread").expect("reclaim then clean shutdown");
        assert!(!socket.exists(), "socket file is removed on the way out");
        // The lock file deliberately outlives the daemon (unlinking it
        // would reopen the reclaim race one level up).
        assert!(socklock::lock_path(&socket).exists());
        let _ = std::fs::remove_file(socklock::lock_path(&socket));
    }
}

fn retry_override(base: RetryPolicy, v: Option<&Json>) -> Result<RetryPolicy, ServeError> {
    let mut retry = base;
    let Some(obj) = v else { return Ok(retry) };
    if obj.is_null() {
        return Ok(retry);
    }
    let Json::Obj(members) = obj else {
        return Err(("invalid", "`retry` must be an object".to_owned()));
    };
    for (key, value) in members {
        let n = value.as_u64().ok_or((
            "invalid",
            format!("retry field `{key}` must be a non-negative integer"),
        ))?;
        match key.as_str() {
            "max_attempts" => retry.max_attempts = n.min(u64::from(u32::MAX)) as u32,
            "factor" => retry.factor = n.min(u64::from(u32::MAX)) as u32,
            other => return Err(("invalid", format!("unknown retry field `{other}`"))),
        }
    }
    Ok(retry)
}
