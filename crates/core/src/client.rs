//! A self-healing client for the serve daemon.
//!
//! `stqc call` began as a thin one-request wrapper: connect, write one
//! line, read one line. That is exactly the client the chaos harness
//! (`stq_util::netfault`, `stqc chaos-serve`) breaks: responses arrive
//! torn, corrupted, interleaved with stray lines, or not at all because
//! the connection was reset or the worker was killed and restarted
//! under its supervisor. This module is the client that survives all of
//! it — and the reusable plumbing `stqc call` now sits on. It takes an
//! **ordered list of endpoints** ([`ClientConfig::endpoints`]), each a
//! Unix socket or a TCP address, and speaks the identical healing
//! contract over both transports (`docs/serving.md` has the transport
//! matrix and the HA topology).
//!
//! The healing contract (`docs/serving.md` has the retry-semantics
//! table):
//!
//! * **Reconnect.** Connection loss (reset, EOF, refused while the
//!   supervisor restarts a worker) re-establishes the connection,
//!   retrying `connect` within [`ClientConfig::connect_timeout`].
//! * **Failover.** With more than one endpoint configured, a connect
//!   failure, a mid-call severance, or a `shutting-down` rejection
//!   moves on to the next endpoint in the ring — under exactly the
//!   same safe-resend rules as a same-endpoint reconnect. The connect
//!   loop scans the whole ring (preferring the current endpoint) every
//!   pass, so a dead daemon is skipped and a revived one is found
//!   again. [`ClientStats::failovers`] counts successful switches;
//!   [`ClientStats::endpoints_tried`] counts distinct endpoints ever
//!   dialed.
//! * **Bounded backoff + jitter.** Retryable failures — the server's
//!   `overloaded` and `shutting-down` errors, plus transport loss —
//!   back off exponentially from [`ClientConfig::backoff_base`] up to
//!   [`ClientConfig::backoff_max`], with seeded jitter so colliding
//!   clients spread out deterministically per seed.
//! * **Budgets.** At most [`ClientConfig::max_retries`] re-attempts per
//!   call, all inside [`ClientConfig::call_deadline`] when one is set.
//! * **Safe re-send only when safe.** Every attempt uses a fresh
//!   request id, and responses are attributed strictly by id: stray
//!   lines with unknown ids are dropped, unparseable lines are treated
//!   as transport corruption. Idempotent methods (`check`, `prove`,
//!   `stats`, `health`, `shutdown`) are re-sent freely. A
//!   `define_qualifiers` request is re-sent only when the server
//!   provably never executed it (an id-`null` `parse` error, or an
//!   `overloaded`/`shutting-down` rejection); if the connection dies
//!   after the request may have reached the server, the call returns
//!   [`CallError::Ambiguous`] instead of blindly replaying a mutation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use stq_util::json::{escape, Json};

/// One place a daemon might be listening: a Unix socket path or a TCP
/// `HOST:PORT` address. Both carry the identical wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP `HOST:PORT` address.
    Tcp(String),
}

impl Endpoint {
    /// Parses the `stqc call --endpoint` syntax: an explicit `tcp:` or
    /// `unix:` prefix wins; otherwise a value with a `:` and no `/` is
    /// a TCP address, and anything else is a socket path.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_owned())
        } else if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else if s.contains(':') && !s.contains('/') {
            Endpoint::Tcp(s.to_owned())
        } else {
            Endpoint::Unix(PathBuf::from(s))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Knobs for [`Client`]; defaults mirror the historical thin client
/// (one connect attempt, no retries, no deadline).
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Ordered daemon endpoints. The first is preferred; the rest are
    /// failover targets, tried in ring order on connect failure,
    /// severance, or a `shutting-down` rejection.
    pub endpoints: Vec<Endpoint>,
    /// Total budget for establishing a connection, including retries
    /// while every endpoint is refused/absent (a supervisor restarting
    /// its worker). Zero means a single pass over the ring.
    pub connect_timeout: Duration,
    /// Overall wall-clock budget for one `call`, covering every retry;
    /// `None` waits indefinitely (the pre-chaos behavior).
    pub call_deadline: Option<Duration>,
    /// Re-attempts allowed per call after recoverable failures.
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Jitter seed (splitmix64): the same seed yields the same jitter
    /// sequence, keeping chaos campaigns reproducible.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            endpoints: Vec::new(),
            connect_timeout: Duration::ZERO,
            call_deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl ClientConfig {
    /// A thin-client config for a single Unix-socket endpoint.
    pub fn unix(socket: impl Into<PathBuf>) -> ClientConfig {
        ClientConfig {
            endpoints: vec![Endpoint::Unix(socket.into())],
            ..ClientConfig::default()
        }
    }

    /// A thin-client config for a single TCP endpoint.
    pub fn tcp(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            endpoints: vec![Endpoint::Tcp(addr.into())],
            ..ClientConfig::default()
        }
    }
}

/// Self-healing telemetry, accumulated across every call on one
/// [`Client`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Retryable server errors (`overloaded`, `shutting-down`)
    /// answered with a backoff and a re-sent request.
    pub retries: u64,
    /// Connections re-established after the first.
    pub reconnects: u64,
    /// Connections established to a *different* endpoint than the
    /// previous one — successful failovers within the endpoint ring.
    pub failovers: u64,
    /// Distinct endpoints this client has ever dialed (successfully or
    /// not). 1 for a healthy single-daemon setup.
    pub endpoints_tried: u64,
    /// Requests re-sent under a fresh id after transport trouble
    /// (corrupt line, connection loss, id-`null` parse error).
    pub resends: u64,
    /// Well-formed response lines dropped because their id belongs to
    /// no outstanding request (injected/interleaved strays).
    pub alien_dropped: u64,
    /// Response lines discarded as unparseable (torn or
    /// garbage-corrupted).
    pub corrupt_lines: u64,
}

/// Why a call gave up. Server-level errors (`input`, `invalid`, …) are
/// *not* here: those come back as the response document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallError {
    /// No connection could be established within the connect budget.
    Unreachable(String),
    /// The call deadline lapsed before an attributed answer arrived.
    DeadlineExhausted(String),
    /// The retry budget ran out on recoverable *transport* failures
    /// (an attributed retryable error on the final attempt is returned
    /// as the outcome instead).
    RetriesExhausted(String),
    /// A non-idempotent request (`define_qualifiers`) may or may not
    /// have executed; replaying it blindly could apply it twice, so the
    /// ambiguity is surfaced instead.
    Ambiguous(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Unreachable(m) => write!(f, "daemon unreachable: {m}"),
            CallError::DeadlineExhausted(m) => write!(f, "call deadline exhausted: {m}"),
            CallError::RetriesExhausted(m) => write!(f, "retry budget exhausted: {m}"),
            CallError::Ambiguous(m) => write!(f, "outcome ambiguous: {m}"),
        }
    }
}

impl std::error::Error for CallError {}

/// The attributed response to one call: the raw wire line plus its
/// parsed form. `ok:false` responses with terminal codes land here too
/// — only transport-level failures become [`CallError`].
#[derive(Clone, Debug)]
pub struct CallOutcome {
    pub raw: String,
    pub doc: Json,
}

/// True for methods the server may execute any number of times with
/// the same observable result, making blind re-send safe.
pub fn method_is_idempotent(method: &str) -> bool {
    // `reload` re-reads the daemon's configured qualifier files from
    // disk; replaying it converges to the same registry, so it is as
    // safe to re-send as `shutdown`.
    matches!(
        method,
        "check" | "prove" | "stats" | "health" | "shutdown" | "reload"
    )
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A blocking stream to the daemon over either transport. Both carry
/// the identical line-delimited JSON protocol; the client never needs
/// to know which one it is holding.
enum NetStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl NetStream {
    fn try_clone(&self) -> std::io::Result<NetStream> {
        match self {
            NetStream::Unix(s) => s.try_clone().map(NetStream::Unix),
            NetStream::Tcp(s) => s.try_clone().map(NetStream::Tcp),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            NetStream::Unix(s) => s.set_read_timeout(dur),
            NetStream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.write(buf),
            NetStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Unix(s) => s.flush(),
            NetStream::Tcp(s) => s.flush(),
        }
    }
}

struct Conn {
    stream: NetStream,
    reader: BufReader<NetStream>,
}

enum Recv {
    Line(String),
    Corrupt,
    Eof,
    TimedOut,
}

/// A reconnecting, retrying, failing-over client for a tier of serve
/// daemons (one endpoint is simply a tier of one).
pub struct Client {
    cfg: ClientConfig,
    conn: Option<Conn>,
    next_id: u64,
    rng: u64,
    ever_connected: bool,
    /// Index of the endpoint to prefer on the next dial.
    endpoint_idx: usize,
    /// Endpoint of the most recent successful connection; a later
    /// connection elsewhere is a failover.
    last_connected_idx: Option<usize>,
    /// Which endpoints have ever been dialed (for `endpoints_tried`).
    tried: Vec<bool>,
    stats: ClientStats,
}

impl Client {
    pub fn new(cfg: ClientConfig) -> Client {
        let rng = splitmix64(cfg.seed ^ 0xC1A0_5EED);
        let tried = vec![false; cfg.endpoints.len()];
        Client {
            cfg,
            conn: None,
            next_id: 0,
            rng,
            ever_connected: false,
            endpoint_idx: 0,
            last_connected_idx: None,
            tried,
            stats: ClientStats::default(),
        }
    }

    /// Self-healing counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Sleeps one backoff step (exponential in `attempt`, jittered,
    /// clipped to the remaining deadline).
    fn backoff(&mut self, attempt: u32, overall: Option<Instant>) {
        let exp = attempt.min(16);
        let base = self.cfg.backoff_base.as_secs_f64() * f64::from(1u32 << exp);
        let capped = base.min(self.cfg.backoff_max.as_secs_f64());
        self.rng = splitmix64(self.rng);
        let jitter = 0.5 + (self.rng >> 11) as f64 / 9_007_199_254_740_992.0;
        let mut sleep = Duration::from_secs_f64(capped * jitter);
        if let Some(deadline) = overall {
            sleep = sleep.min(deadline.saturating_duration_since(Instant::now()));
        }
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }

    /// Marks endpoint `idx` as dialed, updating `endpoints_tried`.
    fn mark_tried(&mut self, idx: usize) {
        if !self.tried[idx] {
            self.tried[idx] = true;
            self.stats.endpoints_tried += 1;
        }
    }

    /// Ensures a live connection, scanning the endpoint ring (starting
    /// at the preferred index) within the connect budget and the call
    /// deadline, when tighter. On total failure the error names every
    /// endpoint with the last reason each one refused.
    fn ensure_connected(&mut self, overall: Option<Instant>) -> Result<(), CallError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let n = self.cfg.endpoints.len();
        if n == 0 {
            return Err(CallError::Unreachable("no endpoints configured".to_owned()));
        }
        let mut give_up = Instant::now() + self.cfg.connect_timeout;
        if let Some(deadline) = overall {
            give_up = give_up.min(deadline);
        }
        loop {
            let mut errors: Vec<String> = Vec::with_capacity(n);
            for step in 0..n {
                let idx = (self.endpoint_idx + step) % n;
                let endpoint = self.cfg.endpoints[idx].clone();
                self.mark_tried(idx);
                let dialed = match &endpoint {
                    Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(NetStream::Tcp),
                    Endpoint::Unix(path) => UnixStream::connect(path).map(NetStream::Unix),
                };
                match dialed {
                    Ok(stream) => {
                        if let NetStream::Tcp(s) = &stream {
                            // Request lines are tiny; trading batching
                            // for latency matches the Unix-socket
                            // behavior.
                            let _ = s.set_nodelay(true);
                        }
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                        let reader = BufReader::new(stream.try_clone().map_err(|e| {
                            CallError::Unreachable(format!("{endpoint}: {e}"))
                        })?);
                        if self.ever_connected {
                            self.stats.reconnects += 1;
                        }
                        if self.last_connected_idx.is_some_and(|prev| prev != idx) {
                            self.stats.failovers += 1;
                        }
                        self.ever_connected = true;
                        self.last_connected_idx = Some(idx);
                        self.endpoint_idx = idx;
                        self.conn = Some(Conn { stream, reader });
                        return Ok(());
                    }
                    Err(e) => errors.push(format!("{endpoint}: {e}")),
                }
            }
            if Instant::now() >= give_up {
                return Err(CallError::Unreachable(errors.join("; ")));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
    }

    /// Prefers the next endpoint in the ring on the upcoming dial —
    /// the failover half of a severance or `shutting-down` recovery.
    /// A single-endpoint ring is unchanged (plain reconnect).
    fn advance_endpoint(&mut self) {
        let n = self.cfg.endpoints.len();
        if n > 1 {
            self.endpoint_idx = (self.endpoint_idx + 1) % n;
        }
    }

    /// Reads the next response line, surviving read-timeout polls (a
    /// partial line persists in the reader's buffer across polls).
    fn recv(&mut self, overall: Option<Instant>) -> Recv {
        let Some(conn) = self.conn.as_mut() else {
            return Recv::Eof;
        };
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match conn.reader.read_until(b'\n', &mut buf) {
                Ok(0) => return Recv::Eof,
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        // EOF mid-line: a torn final line.
                        return if buf.iter().all(|b| b.is_ascii_whitespace()) {
                            Recv::Eof
                        } else {
                            Recv::Corrupt
                        };
                    }
                    let Ok(text) = String::from_utf8(buf) else {
                        return Recv::Corrupt;
                    };
                    if text.trim().is_empty() {
                        buf = Vec::new();
                        continue;
                    }
                    return Recv::Line(text.trim().to_owned());
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if let Some(deadline) = overall {
                        if Instant::now() >= deadline {
                            return Recv::TimedOut;
                        }
                    }
                }
                Err(_) => return Recv::Eof,
            }
        }
    }

    /// One request, healed end-to-end: returns the single attributed
    /// response, or a [`CallError`] describing why no trustworthy
    /// answer could be obtained.
    ///
    /// `params` is a pre-serialized JSON object; `deadline_ms` is the
    /// *wire* per-request deadline forwarded to the server (distinct
    /// from the client-side [`ClientConfig::call_deadline`]).
    ///
    /// # Errors
    ///
    /// [`CallError`] — unreachable daemon, exhausted deadline/retry
    /// budget, or an ambiguous non-idempotent outcome.
    pub fn call(
        &mut self,
        method: &str,
        params: Option<&str>,
        deadline_ms: Option<u64>,
    ) -> Result<CallOutcome, CallError> {
        let overall = self.cfg.call_deadline.map(|d| Instant::now() + d);
        let idempotent = method_is_idempotent(method);
        let mut attempts_left = u64::from(self.cfg.max_retries) + 1;
        let mut backoff_step = 0u32;
        // True once a non-idempotent request has plausibly reached the
        // server; from then on only provably-not-executed rejections
        // may re-send.
        let mut maybe_executed = false;
        let ambiguous = |what: &str| {
            CallError::Ambiguous(format!(
                "{what} after `{method}` was sent; it may or may not have \
                 executed — re-sending could apply it twice"
            ))
        };
        loop {
            if attempts_left == 0 {
                return Err(CallError::RetriesExhausted(format!(
                    "`{method}` failed after {} attempt(s)",
                    u64::from(self.cfg.max_retries) + 1
                )));
            }
            attempts_left -= 1;
            if let Some(deadline) = overall {
                if Instant::now() >= deadline {
                    return Err(CallError::DeadlineExhausted(format!(
                        "`{method}` got no attributed answer in time"
                    )));
                }
            }
            self.ensure_connected(overall)?;
            self.next_id += 1;
            let id = self.next_id;
            let mut request = format!("{{\"id\":{id},\"method\":\"{}\"", escape(method));
            if let Some(ms) = deadline_ms {
                request.push_str(&format!(",\"deadline_ms\":{ms}"));
            }
            if let Some(p) = params {
                request.push_str(&format!(",\"params\":{p}"));
            }
            request.push_str("}\n");
            let sent = {
                let conn = self.conn.as_mut().expect("ensured above");
                conn.stream
                    .write_all(request.as_bytes())
                    .and_then(|()| conn.stream.flush())
                    .is_ok()
            };
            if !sent {
                self.drop_conn();
                self.advance_endpoint();
                if !idempotent {
                    // Even a failed write may have delivered the line.
                    return Err(ambiguous("the connection broke"));
                }
                self.stats.resends += 1;
                continue;
            }
            maybe_executed = maybe_executed || !idempotent;
            // Read until a line attributed to `id` (or this attempt
            // dies and the outer loop re-sends under a fresh id).
            'read: loop {
                match self.recv(overall) {
                    Recv::TimedOut => {
                        return Err(CallError::DeadlineExhausted(format!(
                            "`{method}` got no attributed answer in time"
                        )));
                    }
                    Recv::Eof => {
                        self.drop_conn();
                        self.advance_endpoint();
                        if maybe_executed {
                            return Err(ambiguous("the connection closed"));
                        }
                        self.stats.resends += 1;
                        break 'read;
                    }
                    Recv::Corrupt => {
                        // The corrupted line may have been our answer;
                        // nothing else may ever come. Re-send under a
                        // fresh id (idempotent only).
                        self.stats.corrupt_lines += 1;
                        if maybe_executed {
                            self.drop_conn();
                            return Err(ambiguous("a corrupted response arrived"));
                        }
                        self.stats.resends += 1;
                        break 'read;
                    }
                    Recv::Line(raw) => {
                        let Ok(doc) = Json::parse(&raw) else {
                            self.stats.corrupt_lines += 1;
                            if maybe_executed {
                                self.drop_conn();
                                return Err(ambiguous("a corrupted response arrived"));
                            }
                            self.stats.resends += 1;
                            break 'read;
                        };
                        let line_id = doc.get("id").cloned().unwrap_or(Json::Null);
                        if line_id.as_u64() != Some(id) {
                            let code = doc
                                .get("error")
                                .and_then(|e| e.get("code"))
                                .and_then(Json::as_str);
                            if line_id.is_null() && code == Some("parse") {
                                // The server read garbage where our
                                // request should have been: provably
                                // never executed, safe for any method.
                                maybe_executed = false;
                                self.stats.resends += 1;
                                break 'read;
                            }
                            // A stray line for an id we never sent (or
                            // retired): drop it, keep listening.
                            self.stats.alien_dropped += 1;
                            continue 'read;
                        }
                        // Attributed. Retryable server errors loop;
                        // everything else is the answer.
                        let code = doc
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Json::as_str);
                        match code {
                            Some("overloaded") => {
                                // Rejected before execution: safe for
                                // any method after a backoff. With no
                                // attempts left the rejection itself is
                                // the answer (the caller sees the raw
                                // error document, as a retry-less
                                // client always did).
                                if attempts_left == 0 {
                                    return Ok(CallOutcome { raw, doc });
                                }
                                maybe_executed = false;
                                self.stats.retries += 1;
                                self.backoff(backoff_step, overall);
                                backoff_step += 1;
                                break 'read;
                            }
                            Some("shutting-down") => {
                                // Rejected before execution; the daemon
                                // (or its current worker) is going
                                // away. Fail over to the next endpoint
                                // after a backoff.
                                if attempts_left == 0 {
                                    return Ok(CallOutcome { raw, doc });
                                }
                                maybe_executed = false;
                                self.drop_conn();
                                self.advance_endpoint();
                                self.stats.retries += 1;
                                self.backoff(backoff_step, overall);
                                backoff_step += 1;
                                break 'read;
                            }
                            _ => return Ok(CallOutcome { raw, doc }),
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixListener;
    use std::path::Path;

    fn temp_socket(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stqc-client-{name}-{}.sock", std::process::id()))
    }

    fn cfg(socket: &Path) -> ClientConfig {
        cfg_multi(vec![Endpoint::Unix(socket.to_path_buf())])
    }

    fn cfg_multi(endpoints: Vec<Endpoint>) -> ClientConfig {
        ClientConfig {
            endpoints,
            connect_timeout: Duration::from_secs(5),
            call_deadline: Some(Duration::from_secs(10)),
            max_retries: 8,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(10),
            seed: 7,
        }
    }

    /// A scripted fake daemon: accepts connections, reads one line per
    /// scripted response, writes the scripted bytes, moves on.
    fn scripted_daemon(
        socket: &Path,
        scripts: Vec<Vec<&'static str>>,
    ) -> std::thread::JoinHandle<()> {
        let _ = std::fs::remove_file(socket);
        let listener = UnixListener::bind(socket).expect("bind scripted daemon");
        std::thread::spawn(move || {
            for script in scripts {
                let (mut stream, _) = listener.accept().expect("accept");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                for response in script {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let doc = Json::parse(line.trim()).expect("request is json");
                    let id = doc.get("id").and_then(Json::as_u64).expect("request id");
                    let rendered = response.replace("$ID", &id.to_string());
                    stream.write_all(rendered.as_bytes()).expect("write");
                    stream.flush().expect("flush");
                }
                // Connection drops here (stream out of scope).
            }
        })
    }

    #[test]
    fn clean_round_trip_attributes_by_id() {
        let socket = temp_socket("clean");
        let daemon = scripted_daemon(
            &socket,
            vec![vec!["{\"id\":$ID,\"ok\":true,\"result\":{\"x\":1}}\n"]],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client.call("stats", None, None).expect("clean call");
        assert_eq!(out.doc.get("ok").and_then(Json::as_bool), Some(true));
        let expected = ClientStats { endpoints_tried: 1, ..ClientStats::default() };
        assert_eq!(client.stats(), expected);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn strays_are_dropped_and_the_real_answer_is_found() {
        let socket = temp_socket("stray");
        let daemon = scripted_daemon(
            &socket,
            vec![vec![
                "{\"id\":\"net-fault-alien\",\"ok\":true,\"result\":{}}\n\
                 {\"id\":$ID,\"ok\":true,\"result\":{\"real\":true}}\n",
            ]],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client.call("stats", None, None).expect("healed call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("real"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(client.stats().alien_dropped, 1);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn disconnect_before_answer_reconnects_and_resends() {
        let socket = temp_socket("drop");
        // First connection: answers nothing (the script is empty), so
        // the accept loop immediately drops it. Second: answers.
        let daemon = scripted_daemon(
            &socket,
            vec![
                vec![],
                vec!["{\"id\":$ID,\"ok\":true,\"result\":{\"healed\":true}}\n"],
            ],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client.call("prove", None, None).expect("healed call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("healed"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.stats();
        assert_eq!(stats.reconnects, 1);
        assert!(stats.resends >= 1);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn corrupt_line_triggers_a_fresh_id_resend() {
        let socket = temp_socket("corrupt");
        let daemon = scripted_daemon(
            &socket,
            vec![vec![
                "\u{fffd}garbage not json\n",
                "{\"id\":$ID,\"ok\":true,\"result\":{\"second\":true}}\n",
            ]],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client.call("check", None, None).expect("healed call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("second"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.stats();
        assert_eq!(stats.corrupt_lines, 1);
        assert_eq!(stats.resends, 1);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn overloaded_backs_off_and_retries() {
        let socket = temp_socket("overloaded");
        let daemon = scripted_daemon(
            &socket,
            vec![vec![
                "{\"id\":$ID,\"ok\":false,\"error\":{\"code\":\"overloaded\",\"message\":\"full\"}}\n",
                "{\"id\":$ID,\"ok\":true,\"result\":{\"done\":true}}\n",
            ]],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client.call("prove", None, None).expect("healed call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("done"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(client.stats().retries, 1);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn define_after_possible_send_is_ambiguous_not_replayed() {
        let socket = temp_socket("ambiguous");
        // The daemon reads the define and hangs up without answering.
        let daemon = scripted_daemon(&socket, vec![vec![""]]);
        let mut client = Client::new(cfg(&socket));
        let err = client
            .call("define_qualifiers", Some("{\"source\":\"x\"}"), None)
            .expect_err("must not silently replay");
        assert!(
            matches!(err, CallError::Ambiguous(_)),
            "expected Ambiguous, got {err:?}"
        );
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn id_null_parse_error_is_safe_to_resend_even_for_define() {
        let socket = temp_socket("parse-null");
        let daemon = scripted_daemon(
            &socket,
            vec![vec![
                "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"parse\",\"message\":\"bad\"}}\n",
                "{\"id\":$ID,\"ok\":true,\"result\":{\"defined\":[]}}\n",
            ]],
        );
        let mut client = Client::new(cfg(&socket));
        let out = client
            .call("define_qualifiers", Some("{\"source\":\"\"}"), None)
            .expect("a provably-unexecuted define may re-send");
        assert_eq!(out.doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(client.stats().resends, 1);
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn unreachable_socket_fails_fast_with_zero_connect_budget() {
        let socket = temp_socket("refused");
        let _ = std::fs::remove_file(&socket);
        let mut client = Client::new(ClientConfig::unix(&socket));
        let err = client.call("stats", None, None).expect_err("no daemon");
        assert!(matches!(err, CallError::Unreachable(_)), "{err:?}");
    }

    #[test]
    fn tcp_round_trip_attributes_by_id() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind tcp");
        let addr = listener.local_addr().expect("addr").to_string();
        let daemon = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            let doc = Json::parse(line.trim()).expect("request is json");
            let id = doc.get("id").and_then(Json::as_u64).expect("request id");
            let response = format!("{{\"id\":{id},\"ok\":true,\"result\":{{\"tcp\":true}}}}\n");
            stream.write_all(response.as_bytes()).expect("write");
        });
        let mut client = Client::new(cfg_multi(vec![Endpoint::Tcp(addr)]));
        let out = client.call("stats", None, None).expect("tcp call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("tcp"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let expected = ClientStats { endpoints_tried: 1, ..ClientStats::default() };
        assert_eq!(client.stats(), expected);
        daemon.join().expect("daemon thread");
    }

    #[test]
    fn retry_budget_is_bounded() {
        let socket = temp_socket("budget");
        let daemon = scripted_daemon(
            &socket,
            vec![vec![
                "{\"id\":$ID,\"ok\":false,\"error\":{\"code\":\"overloaded\",\"message\":\"full\"}}\n";
                3
            ]],
        );
        let mut client = Client::new(ClientConfig {
            max_retries: 2,
            ..cfg(&socket)
        });
        let out = client
            .call("prove", None, None)
            .expect("the final rejection is returned as the answer");
        assert_eq!(
            out.doc
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded"),
            "the caller sees the last raw rejection"
        );
        assert_eq!(client.stats().retries, 2, "two backoff-and-retry rounds");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&socket);
    }

    #[test]
    fn endpoint_parse_distinguishes_unix_and_tcp() {
        assert_eq!(
            Endpoint::parse("/tmp/a.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/a.sock"))
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:9137"),
            Endpoint::Tcp("127.0.0.1:9137".to_owned())
        );
        assert_eq!(
            Endpoint::parse("tcp:localhost:80"),
            Endpoint::Tcp("localhost:80".to_owned())
        );
        assert_eq!(
            Endpoint::parse("unix:weird:name.sock"),
            Endpoint::Unix(PathBuf::from("weird:name.sock"))
        );
        assert_eq!(Endpoint::parse("tcp:1.2.3.4:80").to_string(), "tcp:1.2.3.4:80");
    }

    #[test]
    fn connect_failure_fails_over_to_the_next_endpoint() {
        let dead = temp_socket("failover-dead");
        let _ = std::fs::remove_file(&dead);
        let live = temp_socket("failover-live");
        let daemon = scripted_daemon(
            &live,
            vec![vec!["{\"id\":$ID,\"ok\":true,\"result\":{\"b\":true}}\n"]],
        );
        let mut client = Client::new(cfg_multi(vec![
            Endpoint::Unix(dead.clone()),
            Endpoint::Unix(live.clone()),
        ]));
        let out = client.call("stats", None, None).expect("failed over");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("b"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.stats();
        assert_eq!(stats.endpoints_tried, 2, "both endpoints were dialed");
        assert_eq!(stats.failovers, 0, "first connection is not a failover");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_file(&live);
    }

    #[test]
    fn severance_mid_call_fails_over_and_resends() {
        let a = temp_socket("sever-a");
        let b = temp_socket("sever-b");
        // Daemon A accepts once and hangs up without answering; after
        // its single script it is gone (connection refused thereafter).
        let daemon_a = scripted_daemon(&a, vec![vec![]]);
        let daemon_b = scripted_daemon(
            &b,
            vec![vec!["{\"id\":$ID,\"ok\":true,\"result\":{\"survivor\":true}}\n"]],
        );
        let mut client = Client::new(cfg_multi(vec![
            Endpoint::Unix(a.clone()),
            Endpoint::Unix(b.clone()),
        ]));
        let out = client.call("prove", None, None).expect("healed call");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("survivor"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.stats();
        assert_eq!(stats.failovers, 1, "one switch from A to B");
        assert_eq!(stats.reconnects, 1);
        assert!(stats.resends >= 1);
        assert_eq!(stats.endpoints_tried, 2);
        daemon_a.join().expect("daemon a");
        daemon_b.join().expect("daemon b");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn shutting_down_rejection_fails_over_to_the_next_endpoint() {
        let a = temp_socket("drain-a");
        let b = temp_socket("drain-b");
        let daemon_a = scripted_daemon(
            &a,
            vec![vec![
                "{\"id\":$ID,\"ok\":false,\"error\":{\"code\":\"shutting-down\",\
                 \"message\":\"draining\",\"retryable\":true}}\n",
            ]],
        );
        let daemon_b = scripted_daemon(
            &b,
            vec![vec!["{\"id\":$ID,\"ok\":true,\"result\":{\"next\":true}}\n"]],
        );
        let mut client = Client::new(cfg_multi(vec![
            Endpoint::Unix(a.clone()),
            Endpoint::Unix(b.clone()),
        ]));
        let out = client.call("check", None, None).expect("failed over");
        assert_eq!(
            out.doc
                .get("result")
                .and_then(|r| r.get("next"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.retries, 1, "the rejection consumed one retry");
        daemon_a.join().expect("daemon a");
        daemon_b.join().expect("daemon b");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn exhausting_every_endpoint_names_them_all() {
        let a = temp_socket("exhaust-a");
        let b = temp_socket("exhaust-b");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        let mut client = Client::new(ClientConfig {
            endpoints: vec![Endpoint::Unix(a.clone()), Endpoint::Unix(b.clone())],
            ..ClientConfig::default()
        });
        let err = client.call("stats", None, None).expect_err("all dead");
        let CallError::Unreachable(msg) = &err else {
            panic!("expected Unreachable, got {err:?}");
        };
        assert!(msg.contains(a.to_str().unwrap()), "{msg}");
        assert!(msg.contains(b.to_str().unwrap()), "{msg}");
        assert_eq!(client.stats().endpoints_tried, 2);
    }
}
