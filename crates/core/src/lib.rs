//! # Semantic Type Qualifiers
//!
//! A Rust reproduction of *"Semantic Type Qualifiers"* (Chin, Markstrum,
//! Millstein; PLDI 2005): a framework for **user-defined type
//! qualifiers** for C programs with two novel guarantees —
//!
//! 1. an **extensible typechecker** that executes user-written type rules
//!    (`case`, `restrict`, `assign`, `disallow`, `ondecl`) during
//!    qualifier checking, and
//! 2. an **automated soundness checker** that proves, once and for all
//!    programs, that a qualifier's rules guarantee its declared run-time
//!    invariant — discharging the proof obligations with a Simplify-style
//!    automatic theorem prover.
//!
//! This crate is the facade: [`Session`] wires together the underlying
//! subsystems, each its own crate:
//!
//! | crate | subsystem |
//! |---|---|
//! | `stq-qualspec` | the qualifier-definition language (paper §2) |
//! | `stq-cir` | a CIL-like C-subset front end + interpreter (§3) |
//! | `stq-typecheck` | the extensible typechecker + cast instrumentation (§3) |
//! | `stq-logic` | the automatic theorem prover (the Simplify substrate, §4) |
//! | `stq-soundness` | proof-obligation generation and discharge (§4) |
//! | `stq-lambda` | the formalized core calculus (§5) |
//! | `stq-corpus` | synthetic experiment corpora and the tables harness (§6) |
//!
//! # Examples
//!
//! The paper's central demonstration — a buggy qualifier is rejected
//! *before* it can mistype any program:
//!
//! ```
//! use stq_core::{Session, Verdict};
//!
//! let mut session = Session::new();
//! session.define_qualifiers(
//!     "value qualifier pos(int Expr E)
//!          case E of
//!              decl int Expr E1, E2:
//!                  E1 - E2, where pos(E1) && pos(E2)
//!          invariant value(E) > 0",
//! ).unwrap();
//! let report = session.prove_sound("pos").unwrap();
//! assert_eq!(report.verdict, Verdict::Unsound);
//! ```

#[cfg(unix)]
pub mod client;
pub mod reportjson;
pub mod server;
pub mod session;

#[cfg(unix)]
pub use client::{CallError, CallOutcome, Client, ClientConfig, ClientStats, Endpoint};
pub use server::{ServeConfig, ServeStats, Server, ShutdownKind};
pub use session::Session;
pub use stq_cir::interp::{ExecOutcome, InterpConfig, RuntimeError, Value};
pub use stq_cir::parse::ParseError;
pub use stq_qualspec::{parse::SpecError, Registry};
pub use stq_soundness::{
    fault, Budget, BudgetOverride, CachedProof, FaultKind, FaultPlan, Fingerprint, IoFaultKind,
    IoFaultPlan,
    PersistOutcome, ProofCache, ProverStats, QualReport, Resource, RetryPolicy, SoundnessReport,
    Verdict, PROVER_VERSION,
};
pub use stq_typecheck::{AnnotationInference, CheckOptions, CheckResult, CheckStats};
pub use stq_util::{CancelReason, CancelToken, Diagnostic, Diagnostics, Severity};
