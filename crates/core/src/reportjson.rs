//! Hand-rolled JSON rendering of reports and telemetry, shared by the
//! `stqc` command-line tool (`--json`) and the serve daemon's wire
//! protocol so both emit byte-identical report payloads. The schema is
//! documented in `docs/telemetry.md`; the serve envelope around these
//! payloads in `docs/serving.md`.

use std::time::Duration;
use stq_soundness::{Budget, ProverStats, QualReport, Resource, RetryPolicy, Verdict};
use stq_typecheck::CheckStats;

pub use stq_util::json::escape as json_escape;

/// A `Duration` as fractional milliseconds (`12.345`), the unit every
/// `*_ms` field in the schema uses.
pub fn json_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// The stable slug of an exhausted [`Resource`].
pub fn resource_slug(r: Resource) -> &'static str {
    match r {
        Resource::Rounds => "rounds",
        Resource::Instantiations => "instantiations",
        Resource::Decisions => "decisions",
        Resource::Clauses => "clauses",
        Resource::Time => "time",
        Resource::Cancelled => "cancelled",
        Resource::Injected => "injected",
    }
}

/// The stable slug of a [`Verdict`].
pub fn verdict_slug(v: Verdict) -> &'static str {
    match v {
        Verdict::Sound => "sound",
        Verdict::Unsound => "unsound",
        Verdict::NoInvariant => "no-invariant",
        Verdict::ResourceOut => "resource-out",
        Verdict::Crashed => "crashed",
        Verdict::Interrupted => "interrupted",
    }
}

/// `{"max_attempts":..,"factor":..}`.
pub fn retry_json(r: RetryPolicy) -> String {
    format!(
        "{{\"max_attempts\":{},\"factor\":{}}}",
        r.attempt_cap(),
        r.factor
    )
}

/// The prover [`Budget`] object of the schema.
pub fn budget_json(b: &Budget) -> String {
    format!(
        "{{\"max_rounds\":{},\"max_instantiations\":{},\"max_clauses\":{},\
         \"max_decisions\":{},\"timeout_ms\":{}}}",
        b.max_rounds,
        b.max_instantiations,
        b.max_clauses,
        b.max_decisions,
        b.timeout
            .map_or("null".to_owned(), |t| json_ms(t).to_string()),
    )
}

/// The [`ProverStats`] telemetry object of the schema.
pub fn prover_stats_json(s: &ProverStats) -> String {
    let triggers: Vec<String> = s
        .instantiations_by_trigger
        .iter()
        .map(|(t, n)| format!("\"{}\":{n}", json_escape(t)))
        .collect();
    format!(
        "{{\"rounds\":{},\"instantiations\":{},\"instantiations_by_trigger\":{{{}}},\
         \"ematch_candidates\":{},\"decisions\":{},\"propagations\":{},\"conflicts\":{},\
         \"theory_checks\":{},\"merges\":{},\"fm_eliminations\":{},\"clauses\":{},\
         \"max_clauses\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_invalidations\":{},\"theory_preps\":{},\"theory_reuses\":{},\
         \"interned_terms\":{},\"intern_hits\":{},\"wall_ms\":{}}}",
        s.rounds,
        s.instantiations,
        triggers.join(","),
        s.ematch_candidates,
        s.decisions,
        s.propagations,
        s.conflicts,
        s.theory_checks,
        s.merges,
        s.fm_eliminations,
        s.clauses,
        s.max_clauses,
        s.cache_hits,
        s.cache_misses,
        s.cache_invalidations,
        s.theory_preps,
        s.theory_reuses,
        s.interned_terms,
        s.intern_hits,
        json_ms(s.wall),
    )
}

/// The [`CheckStats`] telemetry object of the schema.
pub fn check_stats_json(s: &CheckStats) -> String {
    format!(
        "{{\"dereferences\":{},\"annotations\":{},\"casts\":{},\"qualifier_errors\":{},\
         \"printf_calls\":{},\"restrict_checks\":{},\"match_attempts\":{},\
         \"exprs_visited\":{},\"case_applications\":{},\"memo_hits\":{},\
         \"memo_misses\":{},\"casts_instrumented\":{}}}",
        s.dereferences,
        s.annotations,
        s.casts,
        s.qualifier_errors,
        s.printf_calls,
        s.restrict_checks,
        s.match_attempts,
        s.exprs_visited,
        s.case_applications,
        s.memo_hits,
        s.memo_misses,
        s.casts_instrumented,
    )
}

/// One qualifier's [`QualReport`]: verdict, per-obligation results with
/// countermodels and telemetry, and the per-qualifier totals.
pub fn qual_report_json(r: &QualReport) -> String {
    let obligations: Vec<String> = r
        .obligations
        .iter()
        .map(|o| {
            let countermodel: Vec<String> = o
                .countermodel
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect();
            format!(
                "{{\"description\":\"{}\",\"proved\":{},\"skipped\":{},\"resource\":{},\
                 \"crashed\":{},\"attempts\":{},\
                 \"countermodel\":[{}],\"wall_ms\":{},\"stats\":{}}}",
                json_escape(&o.description),
                o.proved,
                o.skipped,
                o.resource
                    .map_or("null".to_owned(), |res| format!(
                        "\"{}\"",
                        resource_slug(res)
                    )),
                o.crashed
                    .as_deref()
                    .map_or("null".to_owned(), |m| format!("\"{}\"", json_escape(m))),
                o.attempts,
                countermodel.join(","),
                json_ms(o.duration),
                prover_stats_json(&o.stats),
            )
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"verdict\":\"{}\",\"wall_ms\":{},\"obligations\":[{}],\"totals\":{}}}",
        json_escape(&r.qualifier.to_string()),
        verdict_slug(r.verdict),
        json_ms(r.duration),
        obligations.join(","),
        prover_stats_json(&r.totals()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_payloads_parse_as_json() {
        use stq_util::json::Json;
        let budget = Budget::default();
        Json::parse(&budget_json(&budget)).expect("budget json parses");
        Json::parse(&retry_json(RetryPolicy::none())).expect("retry json parses");
        Json::parse(&prover_stats_json(&ProverStats::default())).expect("stats json parses");
        Json::parse(&check_stats_json(&CheckStats::default())).expect("check stats json parses");

        let session = crate::Session::with_builtins();
        let report = session.prove_sound("pos").expect("pos is builtin");
        let v = Json::parse(&qual_report_json(&report)).expect("report json parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("pos"));
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("sound"));
    }
}
