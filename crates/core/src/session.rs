//! The high-level session API: everything a user of the framework does —
//! define qualifiers, prove them sound, check programs, instrument and
//! run them — through one entry point.

use stq_cir::ast::Program;
use stq_cir::interp::{run_entry, ExecOutcome, InterpConfig, RuntimeError, Value};
use stq_cir::parse::{parse_program, parse_program_resilient, ParseError};
use stq_qualspec::parse::SpecError;
use stq_qualspec::Registry;
use stq_soundness::{
    check_all, check_all_pipeline, check_all_pipeline_cancellable, check_all_retrying,
    check_all_with, check_defs_pipeline, check_defs_pipeline_cancellable, check_qualifier,
    check_qualifier_retrying, check_qualifier_with, Budget, CancelToken, ProofCache, QualReport,
    RetryPolicy, SoundnessReport,
};
use stq_typecheck::{
    check_program, check_program_with, infer_annotations, instrument_program, AnnotationInference,
    CheckOptions, CheckResult, InvariantChecker,
};
use stq_util::{Diagnostics, Symbol};

/// A semantic-type-qualifiers session: a set of qualifier definitions and
/// the operations the paper's framework provides over them.
///
/// # Examples
///
/// The full workflow from the paper's introduction: define a qualifier,
/// prove it sound once and for all, then typecheck a program against it.
///
/// ```
/// use stq_core::Session;
///
/// let mut session = Session::with_builtins();
/// let reports = session.prove_all_sound();
/// assert!(reports.iter().all(|r| !r.verdict.to_string().contains("NOT")));
///
/// let result = session
///     .check_source(
///         "int pos gcd(int pos n, int pos m);
///          int pos lcm(int pos a, int pos b) {
///              int pos d = gcd(a, b);
///              int pos prod = a * b;
///              return (int pos) (prod / d);
///          }",
///     )
///     .unwrap();
/// assert!(result.is_clean());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Session {
    registry: Registry,
}

impl Session {
    /// A session with no qualifiers defined.
    pub fn new() -> Session {
        Session::default()
    }

    /// A session preloaded with the paper's qualifier library.
    pub fn with_builtins() -> Session {
        Session {
            registry: Registry::builtins(),
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Defines new qualifiers from definition-language source.
    ///
    /// # Errors
    ///
    /// Returns the first parse or duplicate-name error.
    pub fn define_qualifiers(&mut self, source: &str) -> Result<Vec<Symbol>, SpecError> {
        let before: Vec<Symbol> = self.registry.iter().map(|d| d.name).collect();
        self.registry.add_source(source)?;
        Ok(self
            .registry
            .iter()
            .map(|d| d.name)
            .filter(|n| !before.contains(n))
            .collect())
    }

    /// Error-resilient [`Session::define_qualifiers`]: parses with
    /// recovery, registers every definition that survived, and returns
    /// the new names alongside *all* diagnostics (an empty vector means
    /// everything in `source` was defined).
    pub fn define_qualifiers_resilient(&mut self, source: &str) -> (Vec<Symbol>, Vec<SpecError>) {
        let before: Vec<Symbol> = self.registry.iter().map(|d| d.name).collect();
        let errors = self.registry.add_source_resilient(source);
        let added = self
            .registry
            .iter()
            .map(|d| d.name)
            .filter(|n| !before.contains(n))
            .collect();
        (added, errors)
    }

    /// Well-formedness diagnostics for every definition.
    pub fn check_well_formed(&self) -> Diagnostics {
        self.registry.check_well_formed()
    }

    /// Proves (or refutes) the soundness of one qualifier.
    pub fn prove_sound(&self, name: &str) -> Option<QualReport> {
        self.registry
            .get_by_name(name)
            .map(|def| check_qualifier(&self.registry, def))
    }

    /// As [`Session::prove_sound`], with an explicit prover [`Budget`].
    /// The returned report carries per-obligation [`stq_soundness::ProverStats`]
    /// telemetry; exhausted budgets yield `Verdict::ResourceOut`, never a
    /// false `Unsound`.
    pub fn prove_sound_with(&self, name: &str, budget: Budget) -> Option<QualReport> {
        self.registry
            .get_by_name(name)
            .map(|def| check_qualifier_with(&self.registry, def, budget))
    }

    /// As [`Session::prove_sound_with`], with a budget-escalation
    /// [`RetryPolicy`] for `ResourceOut` obligations. Proof attempts are
    /// panic-isolated: a crashing obligation yields
    /// [`stq_soundness::Verdict::Crashed`] for this qualifier while the
    /// rest of its obligations (and any later calls) still run.
    pub fn prove_sound_retrying(
        &self,
        name: &str,
        budget: Budget,
        retry: RetryPolicy,
    ) -> Option<QualReport> {
        self.registry
            .get_by_name(name)
            .map(|def| check_qualifier_retrying(&self.registry, def, budget, retry))
    }

    /// Proves (or refutes) the soundness of every registered qualifier.
    pub fn prove_all_sound(&self) -> Vec<QualReport> {
        check_all(&self.registry)
    }

    /// As [`Session::prove_all_sound`], with an explicit prover
    /// [`Budget`], returning the aggregate [`SoundnessReport`] (per-
    /// qualifier reports plus registry-wide telemetry totals).
    pub fn prove_all_sound_with(&self, budget: Budget) -> SoundnessReport {
        check_all_with(&self.registry, budget)
    }

    /// As [`Session::prove_all_sound_with`], with a budget-escalation
    /// [`RetryPolicy`]; see [`Session::prove_sound_retrying`].
    pub fn prove_all_sound_retrying(&self, budget: Budget, retry: RetryPolicy) -> SoundnessReport {
        check_all_retrying(&self.registry, budget, retry)
    }

    /// The parallel + incremental pipeline: every qualifier's
    /// obligations, discharged by up to `jobs` worker threads with an
    /// optional [`ProofCache`] consulted per obligation. Verdicts and
    /// report order are identical to [`Session::prove_all_sound_retrying`]
    /// regardless of `jobs`; `jobs <= 1` runs sequentially with no pool.
    pub fn prove_all_sound_pipeline(
        &self,
        budget: Budget,
        retry: RetryPolicy,
        jobs: usize,
        cache: Option<&ProofCache>,
    ) -> SoundnessReport {
        check_all_pipeline(&self.registry, budget, retry, jobs, cache)
    }

    /// As [`Session::prove_all_sound_pipeline`], under a [`CancelToken`]:
    /// a fired token (Ctrl-C, or an attached run deadline) stops the run
    /// at the next safepoint and yields a *partial*
    /// [`SoundnessReport`] — obligations never reached are marked
    /// skipped, conclusive outcomes already in hand keep their verdicts
    /// and still land in the cache, and
    /// [`SoundnessReport::interrupted`] is true.
    pub fn prove_all_sound_cancellable(
        &self,
        budget: Budget,
        retry: RetryPolicy,
        jobs: usize,
        cache: Option<&ProofCache>,
        cancel: &CancelToken,
    ) -> SoundnessReport {
        check_all_pipeline_cancellable(&self.registry, budget, retry, jobs, cache, cancel)
    }

    /// As [`Session::prove_all_sound_pipeline`], restricted to the named
    /// qualifiers (in the given order). Unknown names are reported in the
    /// `Err` variant without running any proofs.
    ///
    /// # Errors
    ///
    /// The first unregistered qualifier name.
    pub fn prove_named_pipeline(
        &self,
        names: &[&str],
        budget: Budget,
        retry: RetryPolicy,
        jobs: usize,
        cache: Option<&ProofCache>,
    ) -> Result<SoundnessReport, String> {
        let mut defs = Vec::with_capacity(names.len());
        for name in names {
            match self.registry.get_by_name(name) {
                Some(def) => defs.push(def),
                None => return Err(format!("unknown qualifier `{name}`")),
            }
        }
        Ok(check_defs_pipeline(
            &self.registry,
            &defs,
            budget,
            retry,
            jobs,
            cache,
        ))
    }

    /// As [`Session::prove_named_pipeline`], under a [`CancelToken`];
    /// see [`Session::prove_all_sound_cancellable`] for the partial-
    /// report semantics when the token fires.
    ///
    /// # Errors
    ///
    /// The first unregistered qualifier name.
    pub fn prove_named_cancellable(
        &self,
        names: &[&str],
        budget: Budget,
        retry: RetryPolicy,
        jobs: usize,
        cache: Option<&ProofCache>,
        cancel: &CancelToken,
    ) -> Result<SoundnessReport, String> {
        let mut defs = Vec::with_capacity(names.len());
        for name in names {
            match self.registry.get_by_name(name) {
                Some(def) => defs.push(def),
                None => return Err(format!("unknown qualifier `{name}`")),
            }
        }
        Ok(check_defs_pipeline_cancellable(
            &self.registry,
            &defs,
            budget,
            retry,
            jobs,
            cache,
            cancel,
        ))
    }

    /// Parses C-subset source with this session's qualifiers as
    /// annotations.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn parse(&self, source: &str) -> Result<Program, ParseError> {
        parse_program(source, &self.registry.names())
    }

    /// Error-resilient [`Session::parse`]: recovers at sync tokens and
    /// returns the partial [`Program`] alongside every syntax error, so
    /// declarations after a typo still reach the typechecker.
    pub fn parse_resilient(&self, source: &str) -> (Program, Vec<ParseError>) {
        parse_program_resilient(source, &self.registry.names())
    }

    /// Typechecks a parsed program.
    pub fn check(&self, program: &Program) -> CheckResult {
        check_program(&self.registry, program)
    }

    /// Typechecks with explicit options (e.g. the flow-sensitive
    /// extension).
    pub fn check_with(&self, program: &Program, options: CheckOptions) -> CheckResult {
        check_program_with(&self.registry, program, options)
    }

    /// Parses and typechecks in one step.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error; qualifier violations are reported
    /// in the returned [`CheckResult`], not as errors.
    pub fn check_source(&self, source: &str) -> Result<CheckResult, ParseError> {
        Ok(self.check(&self.parse(source)?))
    }

    /// Infers annotations for one value qualifier across a whole program
    /// (the paper's §8 "qualifier inference" plan): the greatest
    /// consistent set of declaration sites that can carry the qualifier.
    ///
    /// # Panics
    ///
    /// Panics if `qual` is not a registered value qualifier; see
    /// [`Session::try_infer_annotations`] for the non-panicking form.
    pub fn infer_annotations(&self, program: &Program, qual: &str) -> AnnotationInference {
        infer_annotations(&self.registry, program, Symbol::intern(qual))
    }

    /// As [`Session::infer_annotations`], but validates the qualifier
    /// first so misuse surfaces as a diagnostic rather than a panic.
    ///
    /// # Errors
    ///
    /// When `qual` is not registered, or is not a value qualifier.
    pub fn try_infer_annotations(
        &self,
        program: &Program,
        qual: &str,
    ) -> Result<AnnotationInference, String> {
        match self.registry.get_by_name(qual) {
            None => Err(format!("unknown qualifier `{qual}`")),
            Some(def) if def.kind != stq_qualspec::QualKind::Value => Err(format!(
                "annotation inference targets value qualifiers, but `{qual}` is a ref qualifier"
            )),
            Some(_) => Ok(self.infer_annotations(program, qual)),
        }
    }

    /// Inserts run-time invariant checks for value-qualifier casts.
    pub fn instrument(&self, program: &Program) -> Program {
        instrument_program(&self.registry, program)
    }

    /// Instruments `program` and runs `entry` on the interpreter, with
    /// cast checks evaluated against the declared invariants.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`], including failed qualifier checks.
    pub fn run_instrumented(
        &self,
        program: &Program,
        entry: &str,
        args: &[Value],
    ) -> Result<ExecOutcome, RuntimeError> {
        let instrumented = self.instrument(program);
        let checker = InvariantChecker::new(&self.registry);
        run_entry(
            &instrumented,
            entry,
            args,
            &checker,
            InterpConfig::default(),
        )
    }

    /// Inserts run-time invariant *observations* after every statically
    /// qualified definition point (initialized declarations, assignments,
    /// parameters, returns) — the executable form of the paper's §5
    /// soundness property, used by the differential fuzzer's soundness
    /// oracle.
    pub fn observe(&self, program: &Program) -> Program {
        stq_typecheck::observe_program(&self.registry, program)
    }

    /// Observes `program` (see [`Session::observe`]) and runs `entry` on
    /// the interpreter with the given limits.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; a [`RuntimeError::CheckFailed`] from a
    /// cleanly checked cast-free program is a soundness violation.
    pub fn run_observed(
        &self,
        program: &Program,
        entry: &str,
        args: &[Value],
        config: InterpConfig,
    ) -> Result<ExecOutcome, RuntimeError> {
        let observed = self.observe(program);
        let checker = InvariantChecker::new(&self.registry);
        run_entry(&observed, entry, args, &checker, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_soundness::Verdict;

    #[test]
    fn builtin_session_is_sound_and_well_formed() {
        let s = Session::with_builtins();
        assert!(!s.check_well_formed().has_errors());
        for report in s.prove_all_sound() {
            assert_ne!(report.verdict, Verdict::Unsound, "{report}");
        }
    }

    #[test]
    fn define_reports_new_names() {
        let mut s = Session::new();
        let names = s
            .define_qualifiers(
                "value qualifier answer(int Expr E)
                    case E of
                        decl int Const C: C, where C == 42
                    invariant value(E) == 42",
            )
            .unwrap();
        assert_eq!(names, vec![Symbol::intern("answer")]);
        let report = s.prove_sound("answer").unwrap();
        assert_eq!(report.verdict, Verdict::Sound, "{report}");
    }

    #[test]
    fn check_source_runs_the_full_pipeline() {
        let s = Session::with_builtins();
        let result = s.check_source("int f(int* p) { return *p; }").unwrap();
        assert_eq!(result.stats.qualifier_errors, 1);
    }

    #[test]
    fn run_instrumented_executes_checks() {
        let s = Session::with_builtins();
        let program = s
            .parse("int f(int x) { int pos y = (int pos) x; return y; }")
            .unwrap();
        let ok = s.run_instrumented(&program, "f", &[Value::Int(5)]);
        assert!(ok.is_ok());
        let err = s.run_instrumented(&program, "f", &[Value::Int(-5)]);
        assert!(matches!(err, Err(RuntimeError::CheckFailed { .. })));
    }

    #[test]
    fn prove_sound_of_unknown_qualifier_is_none() {
        let s = Session::new();
        assert!(s.prove_sound("ghost").is_none());
    }

    #[test]
    fn budgeted_proving_reports_telemetry() {
        let s = Session::with_builtins();
        let report = s.prove_all_sound_with(Budget::default());
        assert!(report.all_sound(), "{report}");
        assert!(report.totals.decisions > 0);
        assert!(report.totals.instantiations > 0);
        assert!(report.obligation_count() > 0);
    }

    #[test]
    fn starved_budget_is_resource_out_not_unsound() {
        let s = Session::with_builtins();
        let budget = Budget {
            max_rounds: 1,
            max_instantiations: 1,
            ..Budget::default()
        };
        let report = s.prove_sound_with("unique", budget).unwrap();
        assert_eq!(report.verdict, Verdict::ResourceOut, "{report}");
    }

    #[test]
    fn retrying_rescues_a_starved_budget() {
        use stq_soundness::RetryPolicy;
        let s = Session::with_builtins();
        let budget = Budget {
            max_rounds: 1,
            max_instantiations: 1,
            ..Budget::default()
        };
        let report = s
            .prove_sound_retrying(
                "unique",
                budget,
                RetryPolicy {
                    max_attempts: 8,
                    factor: 4,
                },
            )
            .unwrap();
        assert_eq!(report.verdict, Verdict::Sound, "{report}");
        assert!(report.obligations.iter().any(|o| o.attempts > 1));
    }

    #[test]
    fn session_survives_an_injected_prover_crash() {
        use stq_soundness::fault::{self, FaultKind, FaultPlan};
        let s = Session::with_builtins();
        fault::install(FaultPlan::new().inject(0, FaultKind::Panic));
        let report = s.prove_all_sound_with(Budget::default());
        fault::clear();
        // Every qualifier still has a report; exactly one crashed.
        assert_eq!(report.reports.len(), 8);
        let crashed: Vec<_> = report
            .reports
            .iter()
            .filter(|r| r.verdict == Verdict::Crashed)
            .collect();
        assert_eq!(crashed.len(), 1, "{report}");
        assert!(!report.all_sound());
    }

    #[test]
    fn pipeline_proving_matches_sequential_and_caches() {
        let s = Session::with_builtins();
        let sequential = s.prove_all_sound_retrying(Budget::default(), RetryPolicy::none());
        let cache = ProofCache::in_memory();
        let cold =
            s.prove_all_sound_pipeline(Budget::default(), RetryPolicy::none(), 4, Some(&cache));
        for (a, b) in sequential.reports.iter().zip(&cold.reports) {
            assert_eq!(a.qualifier, b.qualifier);
            assert_eq!(a.verdict, b.verdict);
        }
        let warm =
            s.prove_all_sound_pipeline(Budget::default(), RetryPolicy::none(), 4, Some(&cache));
        assert_eq!(warm.reproved_count(), 0, "warm run is all cache hits");
        assert!(warm.all_sound());
    }

    #[test]
    fn cancelled_session_run_yields_a_partial_report() {
        let s = Session::with_builtins();
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = s.prove_all_sound_cancellable(
            Budget::default(),
            RetryPolicy::none(),
            2,
            None,
            &cancel,
        );
        assert!(report.interrupted());
        assert_eq!(report.skipped_count(), report.obligation_count());
        assert!(!report.all_sound(), "a partial report never claims soundness");
        // An unfired token leaves the cancellable path identical to the
        // plain pipeline.
        let clean = s.prove_named_cancellable(
            &["pos", "unique"],
            Budget::default(),
            RetryPolicy::none(),
            2,
            None,
            &CancelToken::new(),
        );
        let clean = clean.unwrap();
        assert!(!clean.interrupted());
        assert!(clean.all_sound(), "{clean}");
    }

    #[test]
    fn named_pipeline_proves_a_subset_and_rejects_unknowns() {
        let s = Session::with_builtins();
        let report = s
            .prove_named_pipeline(
                &["pos", "unique"],
                Budget::default(),
                RetryPolicy::none(),
                2,
                None,
            )
            .unwrap();
        assert_eq!(report.reports.len(), 2);
        assert!(report.all_sound(), "{report}");
        let err = s
            .prove_named_pipeline(&["ghost"], Budget::default(), RetryPolicy::none(), 1, None)
            .unwrap_err();
        assert!(err.contains("ghost"));
    }

    #[test]
    fn define_qualifiers_resilient_keeps_the_good_definitions() {
        let mut s = Session::new();
        let (names, errors) = s.define_qualifiers_resilient(
            "value qualifier broken(int Expr E
                invariant value(E) > 0
             value qualifier good(int Expr E)
                invariant value(E) > 0",
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(names, vec![Symbol::intern("good")]);
        assert_eq!(s.prove_sound("good").unwrap().verdict, Verdict::Sound);
    }

    #[test]
    fn parse_resilient_checks_the_surviving_declarations() {
        let s = Session::with_builtins();
        let (program, errors) = s.parse_resilient(
            "int bad = ;
             int f(int* p) { return *p; }",
        );
        assert_eq!(errors.len(), 1);
        let result = s.check(&program);
        assert_eq!(result.stats.qualifier_errors, 1, "later decls checked");
    }

    #[test]
    fn try_infer_annotations_rejects_misuse_without_panicking() {
        let s = Session::with_builtins();
        let program = s.parse("int g = 1;").unwrap();
        assert!(s
            .try_infer_annotations(&program, "ghost")
            .unwrap_err()
            .contains("unknown"));
        assert!(s
            .try_infer_annotations(&program, "unique")
            .unwrap_err()
            .contains("ref qualifier"));
        assert!(s.try_infer_annotations(&program, "pos").is_ok());
    }
}
