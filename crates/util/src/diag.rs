//! Structured diagnostics.
//!
//! The paper's extensible typechecker reports qualifier violations "as
//! warnings, but compilation is allowed to continue". We mirror that:
//! checking never aborts on the first problem; every pass accumulates
//! [`Diagnostic`]s into a [`Diagnostics`] bag which the caller inspects.

use crate::span::{Loc, Span};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. where a cast's run-time check was inserted).
    Note,
    /// A qualifier violation; the paper surfaces these as warnings.
    Warning,
    /// A hard error (parse errors, ill-formed qualifier definitions,
    /// failed soundness obligations).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A single reported problem, with a source span and a message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic against its source text, resolving the span to
    /// a line:column location.
    pub fn render(&self, source: &str) -> String {
        let loc = Loc::of(self.span, source);
        format!("{loc}: {}: {}", self.severity, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.severity, self.message, self.span)
    }
}

/// An accumulating collection of diagnostics.
///
/// # Examples
///
/// ```
/// use stq_util::{Diagnostics, Severity, Span};
///
/// let mut diags = Diagnostics::new();
/// diags.warning(Span::new(4, 9), "expression may not satisfy qualifier pos");
/// diags.note(Span::new(4, 9), "run-time check inserted for cast");
/// assert!(!diags.has_errors());
/// assert_eq!(diags.count(Severity::Warning), 1);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty bag.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Pushes an arbitrary diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Records an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        });
    }

    /// Records a warning (the paper's qualifier violations).
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        });
    }

    /// Records a note.
    pub fn note(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Note,
            span,
            message: message.into(),
        });
    }

    /// True if any [`Severity::Error`] diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True if any error *or warning* was recorded (qualifier violations
    /// count as warnings, so experiment harnesses use this).
    pub fn has_problems(&self) -> bool {
        self.items.iter().any(|d| d.severity >= Severity::Warning)
    }

    /// Number of diagnostics with exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over all diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Moves all diagnostics from `other` into `self`.
    pub fn extend_from(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn counts_by_severity() {
        let mut d = Diagnostics::new();
        d.note(Span::DUMMY, "n");
        d.warning(Span::DUMMY, "w1");
        d.warning(Span::DUMMY, "w2");
        assert_eq!(d.count(Severity::Note), 1);
        assert_eq!(d.count(Severity::Warning), 2);
        assert_eq!(d.count(Severity::Error), 0);
        assert_eq!(d.len(), 3);
        assert!(!d.has_errors());
        assert!(d.has_problems());
    }

    #[test]
    fn notes_are_not_problems() {
        let mut d = Diagnostics::new();
        d.note(Span::DUMMY, "info");
        assert!(!d.has_problems());
        assert!(!d.is_empty());
    }

    #[test]
    fn render_resolves_location() {
        let src = "line one\nline two";
        let d = Diagnostic {
            severity: Severity::Error,
            span: Span::new(9, 13),
            message: "bad".into(),
        };
        assert_eq!(d.render(src), "2:1: error: bad");
    }

    #[test]
    fn extend_merges_bags() {
        let mut a = Diagnostics::new();
        a.error(Span::DUMMY, "e");
        let mut b = Diagnostics::new();
        b.warning(Span::DUMMY, "w");
        a.extend_from(b);
        assert_eq!(a.len(), 2);
        assert!(a.has_errors());
    }

    #[test]
    fn display_lists_all() {
        let mut d = Diagnostics::new();
        d.error(Span::new(1, 2), "one");
        d.warning(Span::new(3, 4), "two");
        let s = d.to_string();
        assert!(s.contains("error: one"));
        assert!(s.contains("warning: two"));
    }
}
