//! A minimal JSON value type: parse, inspect, and re-serialize.
//!
//! The serve daemon ([`crate::serve`], `stq-core::server`) speaks
//! line-delimited JSON, and the build environment has no registry
//! access, so this module provides the exact slice of JSON handling the
//! wire protocol needs: a recursive-descent parser into a [`Json`]
//! value tree, accessors that map cleanly onto protocol fields, and a
//! compact `Display` serialization whose output round-trips through the
//! parser.
//!
//! Numbers are kept as `f64` (the JSON data model); [`Json::as_u64`]
//! checks integrality so protocol fields like `deadline_ms` reject
//! `1.5` rather than silently truncating. Object member order is
//! preserved, so re-serializing an incoming value (e.g. echoing a
//! request `id`) is byte-faithful for everything but number formatting
//! and string escapes.
//!
//! # Examples
//!
//! ```
//! use stq_util::json::Json;
//!
//! let v = Json::parse(r#"{"id":7,"method":"stats","params":{}}"#).unwrap();
//! assert_eq!(v.get("method").and_then(Json::as_str), Some("stats"));
//! assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
//! assert!(v.get("missing").is_none());
//! assert_eq!(v.to_string(), r#"{"id":7,"method":"stats","params":{}}"#);
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error (each protocol line is exactly one document).
    ///
    /// # Errors
    ///
    /// A [`JsonError`] locating the first malformed byte.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object member lookup (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer; `None` for `1.5`, `-3`,
    /// non-numbers, and magnitudes beyond 2^53 (where `f64` loses
    /// integer precision).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integers print without a fractional part so ids echo
                // back the way clients sent them.
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Nesting beyond this depth is rejected rather than risking a stack
/// overflow on adversarial input (the daemon parses untrusted bytes).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "`{`")?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1; // past `u`, onto the first digit
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low one.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits starting at `pos`, leaving `pos` past the last.
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for i in 0..4 {
            let d = self
                .bytes
                .get(self.pos + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = (v << 4) | d as u16;
        }
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_and_preserves_order() {
        let v = Json::parse(r#"{"b":[1,{"c":null}],"a":"x"}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":[1,{"c":null}],"a":"x"}"#);
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let escaped = Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped.as_str(), Some("A😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty(), "{bad}: {err}");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
