//! Shared infrastructure for the semantic-type-qualifiers crates.
//!
//! This crate provides the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! * [`Symbol`] — cheap interned strings for identifiers and qualifier names,
//!   with lock-free reads so parallel provers never contend on the table,
//! * [`pool`] — a work-stealing scoped thread pool for embarrassingly
//!   parallel batches (the soundness checker's proof obligations),
//! * [`cancel`] — cooperative cancellation tokens (deadline + external
//!   cancel flag, linkable into parent/child trees) polled by the
//!   prover, the pool, fuzz campaigns, and the serve daemon,
//! * [`json`] — a minimal JSON value type (parse + compact serialize)
//!   for the serve daemon's line-delimited wire protocol,
//! * [`serve`] — the daemon's bounded request scheduler with
//!   structured load shedding,
//! * [`reactor`] — `poll(2)` readiness multiplexing over nonblocking
//!   sockets (self-pipe waker included) so the daemon serves many idle
//!   connections from one thread (see `docs/serving.md`),
//! * [`netfault`] — seeded, deterministic wire-fault injection for the
//!   serve transport (the chaos harness; see `docs/robustness.md`),
//! * [`Span`] / [`Loc`] — byte-offset source locations for error reporting,
//! * [`Diagnostic`] / [`Diagnostics`] — structured warnings and errors, in the
//!   spirit of the paper's typechecker which "provides type errors to the
//!   programmer as warnings, but compilation is allowed to continue".
//!
//! # Examples
//!
//! ```
//! use stq_util::{Symbol, Span, Diagnostics};
//!
//! let a = Symbol::intern("pos");
//! let b = Symbol::intern("pos");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "pos");
//!
//! let mut diags = Diagnostics::new();
//! diags.error(Span::DUMMY, "dereference of possibly-null expression");
//! assert!(diags.has_errors());
//! ```

pub mod cancel;
pub mod diag;
pub mod intern;
pub mod json;
pub mod netfault;
pub mod pool;
pub mod reactor;
pub mod serve;
pub mod span;

pub use cancel::{CancelReason, CancelToken};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use intern::Symbol;
pub use span::{Loc, Span};
