//! Deterministic wire-fault injection for the serve transport.
//!
//! The serve daemon's transport is line-delimited JSON over a Unix
//! socket (or stdio); its robustness story — self-healing clients,
//! supervised workers, the chaos soak oracle (`stqc chaos-serve`) —
//! only stays honest if tests can inject wire faults on demand, the
//! same way `stq_logic::fault` injects solver faults and its
//! `IoFaultPlan` injects persistence faults. A [`NetFaultPlan`]
//! schedules synthetic faults at specific *write operations* (the Nth
//! response write the daemon performs under one [`NetFaultInjector`]),
//! so a seeded campaign corrupts and severs connections in a
//! reproducible pattern while the oracle asserts every request still
//! resolves to exactly one, byte-identical answer.
//!
//! Faults are injected on the daemon's *response path* (the direction
//! clients must defend), by wrapping each connection's write half in a
//! [`ChaosWriter`]:
//!
//! | fault | what the client sees |
//! |---|---|
//! | [`NetFaultKind::Reset`] | the connection is severed before the response — a mid-request drop |
//! | [`NetFaultKind::Torn`] | a prefix of the JSON line, then the connection is severed |
//! | [`NetFaultKind::Garbage`] | invalid-UTF-8 bytes glued onto the front of the line — an unparseable response |
//! | [`NetFaultKind::Alien`] | a complete, well-formed JSON line with an id the client never sent — an interleaved stray line |
//! | [`NetFaultKind::Short`] | a short write: only part of the buffer is accepted this call (the retrying `write_all` loop is exercised; no data is lost) |
//! | [`NetFaultKind::Stall`] | a brief transmission stall before the line |
//!
//! Like the solver plan under `--jobs`, write-op indices are claimed
//! from one shared atomic across every connection, so *which*
//! connection draws fault `k` is scheduling-dependent but the total
//! fault schedule (count and kinds) is fully determined by the seed.
//! Severing is done through a per-connection `severer` callback (for a
//! real socket, `UnixStream::shutdown(Both)`), so the peer observes a
//! genuine hangup rather than a polite simulation.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The kind of synthetic wire fault to inject at a response write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Sever the connection before any of the response is written.
    Reset,
    /// Write a prefix of the response, then sever: a torn line.
    Torn,
    /// Prepend invalid-UTF-8 garbage to the response line, corrupting
    /// it into an unparseable (but newline-terminated) line.
    Garbage,
    /// Inject a complete well-formed JSON line with an unattributable
    /// id before the real response: an interleaved stray line the
    /// client must discard.
    Alien,
    /// Accept only part of the buffer this call (`Ok(n < len)`); the
    /// caller's `write_all` loop retries the rest.
    Short,
    /// Sleep briefly before writing: a transmission stall.
    Stall,
}

/// The stray line [`NetFaultKind::Alien`] injects. Its id is a string
/// no client ever uses (request ids are fresh integers), so resilient
/// clients can — must — drop it as unattributable.
pub const ALIEN_LINE: &str =
    "{\"id\":\"net-fault-alien\",\"ok\":true,\"result\":{\"alien\":true}}\n";

/// A deterministic schedule of synthetic wire faults, keyed by write
/// operation index (0-based count of response writes under one
/// [`NetFaultInjector`], shared across every connection).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: BTreeMap<u64, NetFaultKind>,
}

impl NetFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Schedules `kind` at write operation `at` (chainable).
    #[must_use]
    pub fn inject(mut self, at: u64, kind: NetFaultKind) -> NetFaultPlan {
        self.faults.insert(at, kind);
        self
    }

    /// A pseudo-random plan: `count` faults scattered over the first
    /// `span` write operations, fully determined by `seed` (splitmix64,
    /// so the same seed reproduces the same schedule on every
    /// platform).
    pub fn seeded(seed: u64, count: usize, span: u64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::new();
        let mut s = seed;
        let span = span.max(1);
        for _ in 0..count {
            s = splitmix64(s);
            let at = s % span;
            s = splitmix64(s);
            let kind = match s % 6 {
                0 => NetFaultKind::Reset,
                1 => NetFaultKind::Torn,
                2 => NetFaultKind::Garbage,
                3 => NetFaultKind::Alien,
                4 => NetFaultKind::Short,
                _ => NetFaultKind::Stall,
            };
            plan.faults.insert(at, kind);
        }
        plan
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The fault scheduled at write operation `at`, if any.
    pub fn fault_at(&self, at: u64) -> Option<NetFaultKind> {
        self.faults.get(&at).copied()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One armed [`NetFaultPlan`]: the plan plus the shared write-op
/// counter and injection telemetry. One injector serves a whole daemon;
/// every connection's [`ChaosWriter`] claims indices from it.
#[derive(Debug)]
pub struct NetFaultInjector {
    plan: NetFaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl NetFaultInjector {
    pub fn new(plan: NetFaultPlan) -> NetFaultInjector {
        NetFaultInjector {
            plan,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Claims the next write-op index and returns the fault (if any)
    /// scheduled for it, counting injections as they fire.
    pub fn next_op(&self) -> Option<NetFaultKind> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.fault_at(op);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Write operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults the plan schedules in total.
    pub fn planned(&self) -> u64 {
        self.plan.len() as u64
    }
}

/// A fault-injecting wrapper around one connection's write half.
///
/// Every `write` call claims one write-op index from the shared
/// [`NetFaultInjector`] and simulates the scheduled fault, if any.
/// Severing faults mark the connection dead (all later writes fail
/// with `ConnectionReset`) and invoke the `severer`, which should tear
/// down the real transport so the peer observes the hangup.
pub struct ChaosWriter<W: Write> {
    inner: W,
    injector: Arc<NetFaultInjector>,
    dead: AtomicBool,
    severer: Option<Box<dyn Fn() + Send>>,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`. `severer` (when present) is called exactly once,
    /// at the first severing fault, to hard-close the underlying
    /// transport; without one, severing only poisons this wrapper.
    pub fn new(
        inner: W,
        injector: Arc<NetFaultInjector>,
        severer: Option<Box<dyn Fn() + Send>>,
    ) -> ChaosWriter<W> {
        ChaosWriter {
            inner,
            injector,
            dead: AtomicBool::new(false),
            severer,
        }
    }

    fn sever(&self) -> io::Error {
        if !self.dead.swap(true, Ordering::AcqRel) {
            if let Some(severer) = &self.severer {
                severer();
            }
        }
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection was severed by an injected fault",
            ));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match self.injector.next_op() {
            None => self.inner.write(buf),
            Some(NetFaultKind::Stall) => {
                std::thread::sleep(Duration::from_millis(2));
                self.inner.write(buf)
            }
            Some(NetFaultKind::Short) => {
                // At least one byte makes progress; `write_all` loops
                // for the rest (each continuation claims a fresh op).
                let n = (buf.len() / 2).max(1);
                self.inner.write(&buf[..n])
            }
            Some(NetFaultKind::Garbage) => {
                // Invalid UTF-8, no newline: glued onto the front of
                // the current line, corrupting exactly that line.
                self.inner.write_all(&[0xFF, 0xFE, 0xF5])?;
                self.inner.write(buf)
            }
            Some(NetFaultKind::Alien) => {
                self.inner.write_all(ALIEN_LINE.as_bytes())?;
                self.inner.write(buf)
            }
            Some(NetFaultKind::Torn) => {
                let n = (buf.len() / 2).max(1);
                let _ = self.inner.write(&buf[..n]);
                let _ = self.inner.flush();
                Err(self.sever())
            }
            Some(NetFaultKind::Reset) => Err(self.sever()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead.load(Ordering::Acquire) {
            // The transport is gone; nothing left to flush.
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer(plan: NetFaultPlan) -> (ChaosWriter<Vec<u8>>, Arc<NetFaultInjector>) {
        let injector = Arc::new(NetFaultInjector::new(plan));
        (
            ChaosWriter::new(Vec::new(), Arc::clone(&injector), None),
            injector,
        )
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = NetFaultPlan::seeded(7, 10, 100);
        let b = NetFaultPlan::seeded(7, 10, 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, NetFaultPlan::seeded(8, 10, 100));
    }

    #[test]
    fn empty_plan_passes_writes_through() {
        let (mut w, injector) = writer(NetFaultPlan::new());
        w.write_all(b"{\"id\":1}\n").expect("clean write");
        assert_eq!(w.inner, b"{\"id\":1}\n");
        assert_eq!(injector.ops(), 1);
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn garbage_corrupts_exactly_one_line() {
        let (mut w, injector) = writer(NetFaultPlan::new().inject(0, NetFaultKind::Garbage));
        w.write_all(b"{\"id\":1}\n").expect("write survives");
        w.write_all(b"{\"id\":2}\n").expect("write survives");
        assert_eq!(injector.injected(), 1);
        let text = &w.inner;
        assert!(text.starts_with(&[0xFF, 0xFE, 0xF5]), "garbage leads");
        assert!(text.ends_with(b"{\"id\":2}\n"), "second line is intact");
        // Exactly two newlines: the garbage merged into line one.
        assert_eq!(text.iter().filter(|b| **b == b'\n').count(), 2);
    }

    #[test]
    fn alien_injects_a_complete_extra_line() {
        let (mut w, _) = writer(NetFaultPlan::new().inject(0, NetFaultKind::Alien));
        w.write_all(b"{\"id\":1}\n").expect("write survives");
        let text = String::from_utf8(w.inner.clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(format!("{}\n", lines[0]), ALIEN_LINE);
        assert_eq!(lines[1], "{\"id\":1}");
    }

    #[test]
    fn short_write_loses_nothing_under_write_all() {
        let plan = NetFaultPlan::new()
            .inject(0, NetFaultKind::Short)
            .inject(1, NetFaultKind::Short);
        let (mut w, injector) = writer(plan);
        w.write_all(b"{\"id\":1,\"ok\":true}\n").expect("write_all retries");
        assert_eq!(w.inner, b"{\"id\":1,\"ok\":true}\n");
        assert_eq!(injector.injected(), 2, "both short writes fired");
        assert!(injector.ops() >= 3, "continuations claimed fresh ops");
    }

    #[test]
    fn reset_severs_and_poisons_later_writes() {
        let severed = Arc::new(AtomicBool::new(false));
        let observed = Arc::clone(&severed);
        let injector = Arc::new(NetFaultInjector::new(
            NetFaultPlan::new().inject(1, NetFaultKind::Reset),
        ));
        let mut w = ChaosWriter::new(
            Vec::new(),
            Arc::clone(&injector),
            Some(Box::new(move || observed.store(true, Ordering::Release))),
        );
        w.write_all(b"{\"id\":1}\n").expect("op 0 is clean");
        let err = w.write_all(b"{\"id\":2}\n").expect_err("op 1 resets");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(severed.load(Ordering::Acquire), "severer ran");
        let err = w.write_all(b"{\"id\":3}\n").expect_err("dead stays dead");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.inner, b"{\"id\":1}\n", "nothing after the reset landed");
    }

    #[test]
    fn torn_write_leaves_a_prefix_then_severs() {
        let (mut w, _) = writer(NetFaultPlan::new().inject(0, NetFaultKind::Torn));
        let err = w.write_all(b"{\"id\":1,\"ok\":true}\n").expect_err("torn");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(!w.inner.is_empty() && w.inner.len() < b"{\"id\":1,\"ok\":true}\n".len());
    }

    #[test]
    fn ops_are_claimed_globally_across_writers() {
        let injector = Arc::new(NetFaultInjector::new(
            NetFaultPlan::new().inject(3, NetFaultKind::Alien),
        ));
        let mut a = ChaosWriter::new(Vec::new(), Arc::clone(&injector), None);
        let mut b = ChaosWriter::new(Vec::new(), Arc::clone(&injector), None);
        for _ in 0..2 {
            a.write_all(b"x\n").expect("clean");
            b.write_all(b"y\n").expect("clean");
        }
        assert_eq!(injector.ops(), 4);
        assert_eq!(injector.injected(), 1, "the shared index 3 fired once");
    }
}
