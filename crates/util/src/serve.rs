//! The serve daemon's request scheduler: a fixed pool of worker threads
//! draining a **bounded** queue of jobs, with structured rejection when
//! the queue is full.
//!
//! The work-stealing pool in [`crate::pool`] is built for *batch*
//! fan-out: a known task list, scoped threads, results in input order.
//! A long-running server has the opposite shape — an open-ended stream
//! of jobs arriving from many connections — so this module provides the
//! complementary primitive: [`Scheduler::submit`] either enqueues a job
//! or refuses it immediately ([`Rejected::Overloaded`]), which is what
//! lets `stqc serve` shed load with a structured `overloaded` error
//! instead of building an unbounded backlog. Per-client fairness (the
//! in-flight cap) lives one layer up in `stq-core::server`, which
//! accounts jobs per connection before they reach this queue.
//!
//! Jobs run under `catch_unwind`: a panicking request must not take a
//! worker (and eventually the whole daemon) down with it. Panics are
//! counted and the worker moves on — the same containment stance as the
//! prover's per-obligation isolation.
//!
//! # Examples
//!
//! ```
//! use stq_util::serve::Scheduler;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let sched = Scheduler::new(2, 64);
//! let ran = Arc::new(AtomicUsize::new(0));
//! for _ in 0..10 {
//!     let ran = Arc::clone(&ran);
//!     sched.submit(Box::new(move || {
//!         ran.fetch_add(1, Ordering::Relaxed);
//!     })).unwrap();
//! }
//! sched.close_and_drain();
//! assert_eq!(ran.load(Ordering::Relaxed), 10);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work. Jobs own everything they need; the scheduler
/// never inspects them.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`Scheduler::submit`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is full — the caller should shed this request
    /// with a structured error rather than wait.
    Overloaded,
    /// [`Scheduler::close_and_drain`] has begun; no new work is taken.
    Closed,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded => write!(f, "queue full"),
            Rejected::Closed => write!(f, "scheduler is shutting down"),
        }
    }
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or the queue closes.
    available: Condvar,
    max_queue: usize,
    panics: AtomicU64,
    executed: AtomicU64,
}

/// See the [module docs](self).
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `workers` threads (at least 1) servicing a queue bounded
    /// at `max_queue` pending jobs (at least 1).
    pub fn new(workers: usize, max_queue: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            max_queue: max_queue.max(1),
            panics: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues `job`, or refuses it without blocking.
    ///
    /// # Errors
    ///
    /// [`Rejected::Overloaded`] when the queue is at capacity,
    /// [`Rejected::Closed`] once draining has begun.
    pub fn submit(&self, job: Job) -> Result<(), Rejected> {
        let mut state = self.shared.state.lock().expect("scheduler lock");
        if state.closed {
            return Err(Rejected::Closed);
        }
        if state.jobs.len() >= self.shared.max_queue {
            return Err(Rejected::Overloaded);
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("scheduler lock").jobs.len()
    }

    /// Jobs that have finished running (including panicked ones).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked (contained; the worker survived).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Closes the queue and **drains** it: already-queued jobs still
    /// run, then workers retire and are joined. Idempotent; safe to
    /// call from any thread holding `&self`.
    pub fn close_and_drain(&self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            state.closed = true;
        }
        self.shared.available.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker handles lock"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("scheduler lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.available.wait(state).expect("scheduler wait");
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs_on_workers() {
        let sched = Scheduler::new(4, 128);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let ran = Arc::clone(&ran);
            sched
                .submit(Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
        }
        sched.close_and_drain();
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(sched.executed(), 100);
        assert_eq!(sched.panics(), 0);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // One worker, blocked; capacity 2. The 4th submission must be
        // refused immediately rather than queued or blocked on.
        let sched = Scheduler::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        sched
            .submit(Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        // Wait for the worker to pick the blocker up so the queue is
        // empty, then fill it.
        while sched.queued() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        sched.submit(Box::new(|| {})).unwrap();
        sched.submit(Box::new(|| {})).unwrap();
        assert_eq!(sched.submit(Box::new(|| {})), Err(Rejected::Overloaded));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        sched.close_and_drain();
        assert_eq!(sched.executed(), 3);
    }

    #[test]
    fn drain_runs_queued_jobs_then_refuses_new_ones() {
        let sched = Scheduler::new(2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let ran = Arc::clone(&ran);
            sched
                .submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    ran.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
        }
        sched.close_and_drain();
        assert_eq!(ran.load(Ordering::Relaxed), 16, "drain waits for the queue");
        assert_eq!(sched.submit(Box::new(|| {})), Err(Rejected::Closed));
        // Idempotent.
        sched.close_and_drain();
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let sched = Scheduler::new(1, 8);
        sched.submit(Box::new(|| panic!("request blew up"))).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        sched
            .submit(Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        sched.close_and_drain();
        assert_eq!(sched.panics(), 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1, "the lone worker survived");
    }
}
