//! A small work-stealing scoped thread pool.
//!
//! The soundness checker's proof obligations are mutually independent —
//! the textbook embarrassingly-parallel workload — but their costs are
//! wildly skewed (a reference qualifier's preservation obligation can be
//! 100× a value qualifier's case obligation), so static chunking wastes
//! wall-clock time. This module implements the classic remedy on plain
//! `std`: each worker owns a deque of task indices, pops its own work
//! LIFO, and *steals* FIFO from a sibling when it runs dry. The registry
//! is unreachable from this build environment, so rather than pull in
//! `crossbeam-deque` we keep the deques mutex-guarded — the lock is held
//! for a push/pop of one `usize`, which is noise next to a proof attempt.
//!
//! Results are written back by task index, so the output order is the
//! input order regardless of which worker ran what — the property the
//! checker's determinism guarantee rests on.
//!
//! # Examples
//!
//! ```
//! use stq_util::pool;
//!
//! let squares = pool::run_indexed(4, (0..100u64).collect(), || {}, |i, n| {
//!     assert_eq!(i as u64, n);
//!     n * n
//! });
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::cancel::CancelToken;

/// The number of workers to use when the caller does not specify:
/// the machine's available parallelism, 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `run(index, task)` over every task on `jobs` workers and returns
/// the results **in input order**.
///
/// `init` runs once on each worker thread before it takes any task —
/// the hook the checker uses to propagate per-run context (the fault
/// plan's shared entry counter) onto pool threads. With `jobs <= 1` (or
/// fewer than two tasks) everything runs inline on the caller's thread
/// and `init` is not called: the caller's thread already has its context.
///
/// # Panics
///
/// A panic in `run` is not contained here (callers that need isolation
/// contain panics inside `run`, as the checker does via
/// `prove_isolated`); it propagates out of the scope and poisons nothing
/// because each task value is owned by the worker that took it.
pub fn run_indexed<T, R, F, I>(jobs: usize, tasks: Vec<T>, init: I, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    I: Fn() + Sync,
{
    run_indexed_cancellable(jobs, tasks, &CancelToken::default(), init, run)
        .into_iter()
        .map(|r| r.expect("default token never cancels, so every task ran"))
        .collect()
}

/// Like [`run_indexed`], but workers poll `cancel` before taking each
/// task. Tasks that never start come back as `None`, in their input
/// slots, so the caller can tell "skipped" apart from any real result —
/// the soundness checker turns those slots into `Skipped` obligations in
/// its partial report.
///
/// Cancellation is checked only at task *boundaries*; a task already
/// running is never abandoned mid-flight (in-flight provers observe the
/// same token themselves at their own safepoints). With the default
/// token this is exactly [`run_indexed`]: every slot comes back `Some`.
pub fn run_indexed_cancellable<T, R, F, I>(
    jobs: usize,
    tasks: Vec<T>,
    cancel: &CancelToken,
    init: I,
    run: F,
) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    I: Fn() + Sync,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                if cancel.should_stop() {
                    None
                } else {
                    Some(run(i, t))
                }
            })
            .collect();
    }
    let workers = jobs.min(n);
    // Task payloads live in index-addressed slots so any worker can take
    // any index; the deques move only indices.
    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n).filter(|i| i % workers == w).collect()))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let deques = &deques;
            let results = &results;
            let run = &run;
            let init = &init;
            scope.spawn(move || {
                init();
                while !cancel.should_stop() {
                    let Some(i) = next_task(deques, w) else { break };
                    if let Some(task) = slots[i].lock().expect("slot lock").take() {
                        let r = run(i, task);
                        *results[i].lock().expect("result lock") = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock"))
        .collect()
}

/// Like [`run_indexed_cancellable`], but each worker owns a mutable
/// state value built by `init` on the worker's own thread and threaded
/// into every task it runs — the hook for per-worker resource reuse
/// (the checker keeps a theory-loaded `SolverWorker` alive here, so the
/// background axiomatization is prepared once per worker, not once per
/// obligation).
///
/// The state never crosses threads (built, used, and dropped on one
/// worker), so `S` needs no `Send`/`Sync`. Unlike the stateless
/// functions, the inline path (`jobs <= 1` or fewer than two tasks)
/// *does* call `init` — the state is a resource the tasks require, not
/// ambient thread context the caller already has.
pub fn run_indexed_stateful_cancellable<S, T, R, F, I>(
    jobs: usize,
    tasks: Vec<T>,
    cancel: &CancelToken,
    init: I,
    run: F,
) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(&mut S, usize, T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        let mut state = init();
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                if cancel.should_stop() {
                    None
                } else {
                    Some(run(&mut state, i, t))
                }
            })
            .collect();
    }
    let workers = jobs.min(n);
    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n).filter(|i| i % workers == w).collect()))
        .collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let deques = &deques;
            let results = &results;
            let run = &run;
            let init = &init;
            scope.spawn(move || {
                let mut state = init();
                while !cancel.should_stop() {
                    let Some(i) = next_task(deques, w) else { break };
                    if let Some(task) = slots[i].lock().expect("slot lock").take() {
                        let r = run(&mut state, i, task);
                        *results[i].lock().expect("result lock") = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock"))
        .collect()
}

/// Pops the next index for worker `w`: its own deque back-first (LIFO,
/// cache-warm), then a sibling's front (FIFO steal — the oldest, and in
/// a skewed workload typically the largest, waiting task). `None` means
/// every deque is empty; since tasks never enqueue new tasks, that state
/// is terminal and the worker can retire.
fn next_task(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = deques[w].lock().expect("deque lock").pop_back() {
        return Some(i);
    }
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        if let Some(i) = deques[victim].lock().expect("deque lock").pop_front() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 8] {
            let out = run_indexed(jobs, (0..64usize).collect(), || {}, |i, t| {
                assert_eq!(i, t);
                t * 2
            });
            assert_eq!(out, (0..64).map(|t| t * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(4, (0..257usize).collect(), || {}, |_, t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 257);
    }

    #[test]
    fn init_runs_on_every_worker_thread() {
        let inits = AtomicUsize::new(0);
        run_indexed(
            3,
            (0..30usize).collect(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, t| t,
        );
        assert_eq!(inits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_job_runs_inline_without_init() {
        let inits = AtomicUsize::new(0);
        let main = std::thread::current().id();
        let out = run_indexed(
            1,
            vec![1, 2, 3],
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, t| {
                assert_eq!(std::thread::current().id(), main);
                t * 10
            },
        );
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(inits.load(Ordering::Relaxed), 0, "inline mode skips init");
    }

    #[test]
    fn empty_and_tiny_task_lists_work() {
        let none: Vec<u8> = run_indexed(4, Vec::new(), || {}, |_, t| t);
        assert!(none.is_empty());
        assert_eq!(run_indexed(4, vec![9], || {}, |_, t: u32| t + 1), vec![10]);
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run_indexed(16, (0..3usize).collect(), || {}, |_, t| t + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn pre_cancelled_token_skips_every_task() {
        for jobs in [1, 4] {
            let cancel = CancelToken::new();
            cancel.cancel();
            let ran = AtomicUsize::new(0);
            let out = run_indexed_cancellable(jobs, (0..16usize).collect(), &cancel, || {}, |_, t| {
                ran.fetch_add(1, Ordering::Relaxed);
                t
            });
            assert_eq!(out.len(), 16, "jobs={jobs}: slots preserved");
            assert!(out.iter().all(Option::is_none), "jobs={jobs}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "jobs={jobs}");
        }
    }

    #[test]
    fn cancelling_mid_run_stops_at_a_task_boundary() {
        let cancel = CancelToken::new();
        let out = run_indexed_cancellable(1, (0..64usize).collect(), &cancel, || {}, |i, t| {
            if i == 9 {
                cancel.cancel();
            }
            t
        });
        assert_eq!(out.iter().filter(|r| r.is_some()).count(), 10);
        assert!(out[10..].iter().all(Option::is_none));
        assert_eq!(out[9], Some(9), "the cancelling task itself completes");
    }

    #[test]
    fn default_token_matches_run_indexed_exactly() {
        let cancellable = run_indexed_cancellable(
            4,
            (0..40usize).collect(),
            &CancelToken::default(),
            || {},
            |_, t| t * 3,
        );
        assert!(cancellable.iter().all(Option::is_some));
        let plain = run_indexed(4, (0..40usize).collect(), || {}, |_, t| t * 3);
        assert_eq!(cancellable.into_iter().map(Option::unwrap).collect::<Vec<_>>(), plain);
    }

    #[test]
    fn stateful_results_come_back_in_input_order() {
        for jobs in [1, 2, 4] {
            let out = run_indexed_stateful_cancellable(
                jobs,
                (0..64usize).collect(),
                &CancelToken::default(),
                || 0usize, // per-worker task counter
                |count, i, t| {
                    assert_eq!(i, t);
                    *count += 1;
                    t * 2
                },
            );
            let got: Vec<usize> = out.into_iter().map(Option::unwrap).collect();
            assert_eq!(got, (0..64).map(|t| t * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn stateful_inline_path_builds_state_and_reuses_it() {
        let inits = AtomicUsize::new(0);
        let out = run_indexed_stateful_cancellable(
            1,
            vec![5usize, 6, 7],
            &CancelToken::default(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            },
            |seen: &mut Vec<usize>, _, t| {
                seen.push(t);
                seen.len()
            },
        );
        // One state for the whole inline run, mutated across tasks.
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(out, vec![Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn stateful_state_stays_on_its_worker() {
        // The state carries its builder's thread id; every task must see
        // the state built on the thread that runs it.
        let out = run_indexed_stateful_cancellable(
            4,
            (0..32usize).collect(),
            &CancelToken::default(),
            std::thread::current,
            |built_on, _, t| {
                assert_eq!(built_on.id(), std::thread::current().id());
                t
            },
        );
        assert_eq!(out.iter().filter(|r| r.is_some()).count(), 32);
    }

    #[test]
    fn stateful_pre_cancelled_token_skips_every_task() {
        for jobs in [1, 4] {
            let cancel = CancelToken::new();
            cancel.cancel();
            let out = run_indexed_stateful_cancellable(
                jobs,
                (0..16usize).collect(),
                &cancel,
                || (),
                |(), _, t| t,
            );
            assert_eq!(out.len(), 16, "jobs={jobs}");
            assert!(out.iter().all(Option::is_none), "jobs={jobs}");
        }
    }

    #[test]
    fn skewed_workloads_complete_via_stealing() {
        // One huge task up front; with round-robin distribution it lands
        // on worker 0, and the rest must be stolen or run by siblings.
        let out = run_indexed(4, (0..32u64).collect(), || {}, |_, t| {
            if t == 0 {
                // Busy-spin a little to force the skew.
                let mut acc = 0u64;
                for i in 0..2_000_000 {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
            t
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[31], 31);
    }
}
