//! Readiness-based I/O multiplexing over nonblocking file descriptors.
//!
//! This is the event-notification core behind the `stqc serve` daemon's
//! connection layer ([`serving.md`]): one thread blocks in `poll(2)` over
//! every registered socket plus a self-pipe, and wakes only when a peer
//! has bytes for us, a peer hung up, or another thread rang the [`Waker`].
//! Idle connections therefore cost a table entry and a kernel wait slot —
//! not a thread, and not a sleep/retry loop.
//!
//! Like the rest of the workspace the module is dependency-free: `poll(2)`
//! is reached through a hand-declared `extern "C"` shim (the same idiom as
//! the `flock(2)` lock in `stq-soundness::cache` and the signal shims in
//! `stqc`), and the self-pipe is a nonblocking [`UnixStream::pair`] so no
//! `pipe(2)`/`fcntl(2)` declarations are needed. The [`Waker`] write is a
//! single raw `write(2)` on a pre-registered descriptor, which keeps it
//! async-signal-safe — `CancelToken::cancel` uses exactly this path to
//! interrupt a blocked reactor from a SIGINT handler (see
//! `stq_util::cancel`).
//!
//! The reactor is deliberately minimal: registration is keyed by a caller
//! chosen `usize` token, readiness is level-triggered (exactly `poll(2)`
//! semantics), and the caller owns all descriptor lifecycles. Two counters
//! ([`Reactor::polls`], [`Reactor::wakeups`]) exist so tests and the
//! daemon's `stats` can prove the loop blocks instead of spinning.
//!
//! [`serving.md`]: https://example.invalid/docs/serving.md

use std::io::{self, Read};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `struct pollfd` from `<poll.h>`; layout is identical on every libc the
/// workspace targets.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Which readiness directions a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };

    fn events(self) -> i16 {
        let mut e = 0;
        if self.readable {
            e |= POLLIN;
        }
        if self.writable {
            e |= POLLOUT;
        }
        e
    }
}

/// One readiness notification out of [`Reactor::poll_events`].
///
/// `hangup` covers `POLLHUP`/`POLLERR`/`POLLNVAL`; callers should treat it
/// as "read until EOF/error and tear the registration down".
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

struct Entry {
    fd: RawFd,
    token: usize,
    interest: Interest,
}

/// A cloneable, thread-safe handle that interrupts a blocked
/// [`Reactor::poll_events`] call.
///
/// [`Waker::wake`] writes one byte to the reactor's self-pipe through a raw
/// `write(2)` — no allocation, no locks — so it is safe from worker
/// threads and from signal handlers alike. The pipe is nonblocking; a full
/// pipe means a wakeup is already pending, so a failed write is ignored.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    pub fn wake(&self) {
        let b = [b'!'];
        // Raw write(2): async-signal-safe, and EAGAIN (pipe already full =>
        // a wakeup is already queued) is exactly as good as success.
        unsafe {
            let _ = write(self.tx.as_raw_fd(), b.as_ptr(), 1);
        }
    }

    /// The raw descriptor behind [`wake`](Self::wake), for callers that
    /// must ring the pipe from contexts where even holding an `Arc` is off
    /// the table (e.g. `CancelToken`'s signal-handler path stores it in an
    /// atomic).
    pub fn raw_fd(&self) -> RawFd {
        self.tx.as_raw_fd()
    }
}

/// A `poll(2)`-backed readiness multiplexer.
///
/// Single-threaded by design: one owner registers descriptors and calls
/// [`poll_events`](Self::poll_events) in a loop; other threads communicate
/// through the [`Waker`]. Registrations are keyed by caller-chosen tokens
/// (any `usize` except [`WAKE_TOKEN`]).
pub struct Reactor {
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    entries: Vec<Entry>,
    polls: Arc<AtomicU64>,
    wakeups: Arc<AtomicU64>,
}

/// Reserved token for the internal self-pipe; never returned in an
/// [`Event`] and rejected by [`Reactor::register`].
pub const WAKE_TOKEN: usize = usize::MAX;

impl Reactor {
    pub fn new() -> io::Result<Reactor> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Reactor {
            wake_rx: rx,
            wake_tx: Arc::new(tx),
            entries: Vec::new(),
            polls: Arc::new(AtomicU64::new(0)),
            wakeups: Arc::new(AtomicU64::new(0)),
        })
    }

    pub fn waker(&self) -> Waker {
        Waker { tx: Arc::clone(&self.wake_tx) }
    }

    /// Register `fd` under `token`. The caller keeps ownership of the
    /// descriptor and must [`deregister`](Self::deregister) before closing
    /// it. Re-registering a live token replaces its interest and fd.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) {
        assert!(token != WAKE_TOKEN, "token {token} is reserved for the reactor");
        if let Some(e) = self.entries.iter_mut().find(|e| e.token == token) {
            e.fd = fd;
            e.interest = interest;
        } else {
            self.entries.push(Entry { fd, token, interest });
        }
    }

    /// Change what `token` waits for; no-op if it is not registered.
    pub fn set_interest(&mut self, token: usize, interest: Interest) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.token == token) {
            e.interest = interest;
        }
    }

    pub fn deregister(&mut self, token: usize) {
        self.entries.retain(|e| e.token != token);
    }

    /// Number of live registrations (self-pipe excluded).
    pub fn registered(&self) -> usize {
        self.entries.len()
    }

    /// How many times `poll(2)` has returned. An idle daemon's count stays
    /// flat — the loop blocks, it does not spin (the accept loop it
    /// replaced woke 100×/sec).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// How many self-pipe drains have happened (one per batch of
    /// [`Waker::wake`] calls noticed).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Block until at least one registered descriptor is ready, the
    /// [`Waker`] rings, or `timeout` lapses. Events are appended to
    /// `events` (cleared first); the return value is the number of
    /// *descriptor* events — a pure wakeup or timeout returns `Ok(0)`.
    ///
    /// `None` means block indefinitely; a signal (`EINTR`) returns
    /// `Ok(0)` so the caller can re-check its cancellation token.
    pub fn poll_events(
        &mut self,
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        events.clear();
        let mut fds = Vec::with_capacity(self.entries.len() + 1);
        fds.push(PollFd { fd: self.wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        for e in &self.entries {
            fds.push(PollFd { fd: e.fd, events: e.interest.events(), revents: 0 });
        }
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs deadline does not become a busy loop of
            // zero-timeout polls.
            Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
            None => -1,
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        self.polls.fetch_add(1, Ordering::Relaxed);
        if rc == 0 {
            return Ok(0);
        }
        if fds[0].revents != 0 {
            self.drain_wake_pipe();
        }
        let mut n = 0;
        for (slot, entry) in fds[1..].iter().zip(self.entries.iter()) {
            let r = slot.revents;
            if r == 0 {
                continue;
            }
            events.push(Event {
                token: entry.token,
                readable: r & POLLIN != 0,
                writable: r & POLLOUT != 0,
                hangup: r & (POLLHUP | POLLERR | POLLNVAL) != 0,
            });
            n += 1;
        }
        Ok(n)
    }

    fn drain_wake_pipe(&mut self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

/// Block until `fd` is writable or `timeout` lapses; `Ok(true)` means
/// writable (or in an error state the next `write` will surface).
///
/// Worker threads use this to back-pressure on a nonblocking response
/// socket without taking the descriptor away from the reactor: `poll(2)`
/// on the same fd from two threads is well-defined, and the worker only
/// waits for `POLLOUT` while it holds the connection's write lock.
pub fn wait_writable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    wait_for(fd, POLLOUT, timeout)
}

/// Block until `fd` is readable or `timeout` lapses.
pub fn wait_readable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    wait_for(fd, POLLIN, timeout)
}

fn wait_for(fd: RawFd, want: i16, timeout: Duration) -> io::Result<bool> {
    let mut pfd = PollFd { fd, events: want, revents: 0 };
    let ms = timeout.as_millis().saturating_add(1).min(i32::MAX as u128) as i32;
    let rc = unsafe { poll(&mut pfd, 1, ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(false);
        }
        return Err(err);
    }
    // POLLERR/POLLHUP also count: the pending write will fail fast with a
    // real error instead of the caller stalling to its timeout.
    Ok(rc > 0 && pfd.revents & (want | POLLERR | POLLHUP | POLLNVAL) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    #[test]
    fn readable_event_fires_for_registered_stream() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(b.as_raw_fd(), 7, Interest::READABLE);
        let mut events = Vec::new();
        // Nothing pending yet: a bounded poll times out with zero events.
        let n = r.poll_events(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert_eq!(n, 0);
        a.write_all(b"hello\n").unwrap();
        let n = r.poll_events(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn hangup_reported_when_peer_closes() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(b.as_raw_fd(), 3, Interest::READABLE);
        drop(a);
        let mut events = Vec::new();
        let n = r.poll_events(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].hangup || events[0].readable);
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let mut r = Reactor::new().unwrap();
        let waker = r.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        // Blocks indefinitely until the waker fires from the other thread.
        let n = r.poll_events(None, &mut events).unwrap();
        handle.join().unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(r.wakeups(), 1);
    }

    #[test]
    fn multiple_wakes_coalesce_into_one_drain() {
        let mut r = Reactor::new().unwrap();
        let waker = r.waker();
        for _ in 0..10 {
            waker.wake();
        }
        let mut events = Vec::new();
        r.poll_events(Some(Duration::from_millis(100)), &mut events).unwrap();
        assert_eq!(r.wakeups(), 1);
        // Pipe fully drained: the next bounded poll sees nothing.
        let n = r.poll_events(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert_eq!(n, 0);
        assert_eq!(r.wakeups(), 1);
    }

    #[test]
    fn deregister_stops_events() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(b.as_raw_fd(), 1, Interest::READABLE);
        assert_eq!(r.registered(), 1);
        r.deregister(1);
        assert_eq!(r.registered(), 0);
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = r.poll_events(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn idle_poll_blocks_instead_of_spinning() {
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(b.as_raw_fd(), 1, Interest::READABLE);
        let mut events = Vec::new();
        let start = Instant::now();
        let n = r.poll_events(Some(Duration::from_millis(120)), &mut events).unwrap();
        assert_eq!(n, 0);
        // One poll(2) call covered the whole idle window.
        assert!(start.elapsed() >= Duration::from_millis(100));
        assert_eq!(r.polls(), 1);
    }

    #[test]
    fn wait_writable_is_immediate_on_fresh_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        assert!(wait_writable(a.as_raw_fd(), Duration::from_millis(500)).unwrap());
    }

    #[test]
    fn wait_readable_times_out_without_data() {
        let (a, _b) = UnixStream::pair().unwrap();
        assert!(!wait_readable(a.as_raw_fd(), Duration::from_millis(20)).unwrap());
    }
}
