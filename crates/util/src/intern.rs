//! Global string interning with contention-free reads.
//!
//! Identifiers, qualifier names, and function symbols appear everywhere in
//! the typechecker and the prover; interning makes them `Copy` and makes
//! equality a word comparison. The table is written rarely (during
//! parsing and obligation generation) but read constantly — every
//! `Display` of a term during E-matching deduplication calls
//! [`Symbol::as_str`] — and since PR 3 those reads happen concurrently
//! from the parallel proving pool.
//!
//! The interner is therefore split into two structures:
//!
//! * an **append-only slab** mapping id → string, organised as fixed-size
//!   chunks of `OnceLock<&'static str>` slots reachable through
//!   `OnceLock`'d chunk pointers. Reads ([`Symbol::as_str`]) are two
//!   atomic acquire-loads and never take a lock, so a thread pool
//!   formatting terms cannot serialize on the interner;
//! * **sharded write tables** (string → id), each a small mutex-guarded
//!   map. Writers hash the string to pick a shard, so unrelated
//!   interning calls proceed in parallel; ids are allocated from one
//!   process-global atomic counter.
//!
//! A slot is published (with release ordering) *before* its id is
//! returned from [`Symbol::intern`], so any thread that legitimately
//! holds a `Symbol` — including one received across the proving pool's
//! scope boundary — observes its string.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two `Symbol`s are equal if and only if the strings they intern are equal.
/// `Symbol` is `Copy` and 4 bytes, so it is the identifier representation
/// used throughout the workspace.
///
/// # Examples
///
/// ```
/// use stq_util::Symbol;
///
/// let s = Symbol::intern("nonnull");
/// assert_eq!(s.as_str(), "nonnull");
/// assert_eq!(s, Symbol::intern("nonnull"));
/// assert_ne!(s, Symbol::intern("nonzero"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

const SHARD_BITS: usize = 4;
const NUM_SHARDS: usize = 1 << SHARD_BITS;
const CHUNK_BITS: usize = 10;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
/// 4096 chunks × 1024 slots = 4M distinct symbols before overflow.
const MAX_CHUNKS: usize = 1 << 12;

type Chunk = [OnceLock<&'static str>; CHUNK_SIZE];

struct Interner {
    /// id → string. Chunks are allocated on demand and never freed;
    /// slots are written exactly once, before their id escapes.
    chunks: [OnceLock<Box<Chunk>>; MAX_CHUNKS],
    /// string → id, sharded by string hash to keep writers apart.
    shards: [Mutex<HashMap<&'static str, u32>>; NUM_SHARDS],
    /// The next unallocated id, shared by all shards.
    next: AtomicU32,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        chunks: [const { OnceLock::new() }; MAX_CHUNKS],
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        next: AtomicU32::new(0),
    })
}

fn shard_of(s: &str) -> usize {
    // A fixed (per-process) hasher: shard choice only balances lock
    // contention, so it needs no DoS resistance or cross-run stability.
    let h = BuildHasherDefault::<DefaultHasher>::default().hash_one(s);
    (h as usize) & (NUM_SHARDS - 1)
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    ///
    /// Interned strings are leaked into a process-global table; this is the
    /// usual compiler trade-off (identifiers live for the whole session).
    pub fn intern(s: &str) -> Symbol {
        let table = interner();
        let mut shard = table.shards[shard_of(s)].lock().expect("interner poisoned");
        if let Some(&id) = shard.get(s) {
            return Symbol(id);
        }
        let id = table.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (id as usize) < MAX_CHUNKS * CHUNK_SIZE,
            "interner overflow: more than {} distinct symbols",
            MAX_CHUNKS * CHUNK_SIZE
        );
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        // Publish the slot before the id can escape: everything that
        // transitively receives this Symbol sees the string.
        let chunk = table.chunks[id as usize >> CHUNK_BITS]
            .get_or_init(|| Box::new([const { OnceLock::new() }; CHUNK_SIZE]));
        chunk[id as usize & (CHUNK_SIZE - 1)]
            .set(leaked)
            .expect("freshly allocated id written twice");
        shard.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    ///
    /// Lock-free: two atomic acquire-loads (chunk pointer, then slot),
    /// so concurrent readers never contend — the property the parallel
    /// proving pool relies on.
    pub fn as_str(self) -> &'static str {
        let id = self.0 as usize;
        interner().chunks[id >> CHUNK_BITS]
            .get()
            .and_then(|chunk| chunk[id & (CHUNK_SIZE - 1)].get())
            .expect("symbol id not present in the interner slab")
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn display_matches_contents() {
        let s = Symbol::intern("unique");
        assert_eq!(s.to_string(), "unique");
        assert_eq!(format!("{s:?}"), "Symbol(\"unique\")");
    }

    #[test]
    fn from_str_conversion() {
        let s: Symbol = "tainted".into();
        assert_eq!(s, Symbol::intern("tainted"));
    }

    #[test]
    fn ordering_is_consistent_with_interning_order_per_symbol() {
        // Ordering is by intern id, which is stable within a process; the
        // property we rely on is just that it is a total order.
        let a = Symbol::intern("aaa-order");
        let b = Symbol::intern("bbb-order");
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn many_symbols_round_trip() {
        let names: Vec<String> = (0..200).map(|i| format!("sym{i}")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(s.as_str(), n);
        }
    }

    #[test]
    fn enough_symbols_to_span_multiple_chunks_round_trip() {
        // Force allocation past the first slab chunk so the chunk
        // indexing math is exercised, not just slot 0..1023.
        let names: Vec<String> = (0..(CHUNK_SIZE + 100)).map(|i| format!("chunky{i}")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(s.as_str(), n);
        }
    }

    #[test]
    fn concurrent_interning_and_reading_agree() {
        // Hammer the interner from several threads with overlapping name
        // sets: every thread must see one canonical id per string, and
        // every as_str must round-trip.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..500)
                        .map(|i| {
                            let name = format!("shared{}", (i + t * 37) % 300);
                            let s = Symbol::intern(&name);
                            assert_eq!(s.as_str(), name);
                            (name, s)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut canonical: HashMap<String, Symbol> = HashMap::new();
        for h in handles {
            for (name, sym) in h.join().expect("no panic") {
                let entry = canonical.entry(name).or_insert(sym);
                assert_eq!(*entry, sym, "same string, same symbol, every thread");
            }
        }
    }
}
