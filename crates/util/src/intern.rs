//! Global string interning.
//!
//! Identifiers, qualifier names, and function symbols appear everywhere in
//! the typechecker and the prover; interning makes them `Copy` and makes
//! equality a word comparison. The interner is a process-global table
//! guarded by a mutex, which is plenty for a compiler front end: interning
//! happens during parsing, while the hot paths (typechecking, proving) only
//! compare and hash the already-interned ids.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two `Symbol`s are equal if and only if the strings they intern are equal.
/// `Symbol` is `Copy` and 4 bytes, so it is the identifier representation
/// used throughout the workspace.
///
/// # Examples
///
/// ```
/// use stq_util::Symbol;
///
/// let s = Symbol::intern("nonnull");
/// assert_eq!(s.as_str(), "nonnull");
/// assert_eq!(s, Symbol::intern("nonnull"));
/// assert_ne!(s, Symbol::intern("nonzero"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    ///
    /// Interned strings are leaked into a process-global table; this is the
    /// usual compiler trade-off (identifiers live for the whole session).
    pub fn intern(s: &str) -> Symbol {
        let mut table = interner().lock().expect("interner poisoned");
        if let Some(&id) = table.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(table.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        table.strings.push(leaked);
        table.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let table = interner().lock().expect("interner poisoned");
        table.strings[self.0 as usize]
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn display_matches_contents() {
        let s = Symbol::intern("unique");
        assert_eq!(s.to_string(), "unique");
        assert_eq!(format!("{s:?}"), "Symbol(\"unique\")");
    }

    #[test]
    fn from_str_conversion() {
        let s: Symbol = "tainted".into();
        assert_eq!(s, Symbol::intern("tainted"));
    }

    #[test]
    fn ordering_is_consistent_with_interning_order_per_symbol() {
        // Ordering is by intern id, which is stable within a process; the
        // property we rely on is just that it is a total order.
        let a = Symbol::intern("aaa-order");
        let b = Symbol::intern("bbb-order");
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn many_symbols_round_trip() {
        let names: Vec<String> = (0..200).map(|i| format!("sym{i}")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        for (n, s) in names.iter().zip(&syms) {
            assert_eq!(s.as_str(), n);
        }
    }
}
