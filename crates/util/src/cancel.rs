//! Cooperative cancellation tokens with optional wall-clock deadlines.
//!
//! A [`CancelToken`] is the one mechanism by which long-running work in
//! this workspace — the prover's DPLL search, E-matching rounds, the
//! soundness checker's obligation pipeline, fuzz campaigns — is asked to
//! stop early. It carries two independent stop conditions:
//!
//! * an **external cancel flag**, set by [`CancelToken::cancel`] (e.g.
//!   from a SIGINT handler; the method is a single atomic store and is
//!   async-signal-safe), and
//! * an optional **deadline**, a wall-clock instant after which
//!   [`CancelToken::stop_reason`] reports [`CancelReason::DeadlineExpired`].
//!
//! Cancellation is strictly *cooperative*: nothing is interrupted
//! preemptively. Work polls the token at its natural safepoints (solver
//! decision batches, round boundaries, pool task boundaries) and winds
//! down with partial results. Tokens are cheap `Arc` handles — clone one
//! per worker; every clone observes the same flag and deadline.
//!
//! The default token ([`CancelToken::default`] / [`CancelToken::new`])
//! never fires, so code paths that thread a token through unconditionally
//! pay one relaxed atomic load per poll when no deadline or cancel is in
//! play — the property the determinism guarantee (`--jobs 1/4/8` yield
//! byte-identical verdicts when deadlines are disabled) rests on.
//!
//! # Examples
//!
//! ```
//! use stq_util::cancel::{CancelReason, CancelToken};
//!
//! let token = CancelToken::new();
//! assert!(token.stop_reason().is_none());
//!
//! token.cancel();
//! assert_eq!(token.stop_reason(), Some(CancelReason::Cancelled));
//!
//! let expired = CancelToken::deadline_in(std::time::Duration::ZERO);
//! assert_eq!(expired.stop_reason(), Some(CancelReason::DeadlineExpired));
//! ```

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(unix)]
extern "C" {
    /// Raw `write(2)`, used by [`CancelToken::cancel`] to ring a reactor's
    /// wake pipe. Async-signal-safe per POSIX, which is the whole point —
    /// the libc crate is not a dependency of this workspace.
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Sentinel for "no wake fd registered".
const NO_WAKE_FD: i32 = -1;

/// Why a token asked its holders to stop.
///
/// The distinction is load-bearing downstream: a deadline expiry becomes
/// a *timed-out* prover outcome (`Resource::Time` — wall-clock
/// exhaustion, same as a per-obligation `timeout`), while an external
/// cancel becomes a *cancelled* outcome (`Resource::Cancelled`) and marks
/// the whole run as interrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (SIGINT, caller abort, ...).
    Cancelled,
    /// The token's wall-clock deadline has passed.
    DeadlineExpired,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Linked-token support ([`CancelToken::child`]): a child observes
    /// its parent's cancel flag and deadline in addition to its own, so
    /// firing a parent stops a whole tree of in-flight work, while
    /// cancelling a child (one request) leaves siblings untouched.
    parent: Option<Arc<Inner>>,
    /// Descriptor to write one byte to on [`CancelToken::cancel`]
    /// ([`NO_WAKE_FD`] when unset). A reactor-driven daemon registers its
    /// wake pipe here so a cancel landing on *any* thread — including a
    /// signal handler — interrupts a `poll(2)` blocked with no timeout.
    wake_fd: AtomicI32,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            parent: None,
            wake_fd: AtomicI32::new(NO_WAKE_FD),
        }
    }
}

impl Inner {
    fn cancelled_anywhere(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        self.parent.as_deref().is_some_and(Inner::cancelled_anywhere)
    }

    /// The earliest deadline along the parent chain, if any.
    fn effective_deadline(&self) -> Option<Instant> {
        let inherited = self.parent.as_deref().and_then(Inner::effective_deadline);
        match (self.deadline, inherited) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A cloneable, thread-safe handle asking cooperative work to stop.
///
/// See the [module docs](self) for the protocol. `Clone` shares the
/// underlying state: cancelling any clone cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never fires on its own (no deadline, not cancelled).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires once the wall clock reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner { deadline: Some(deadline), ..Inner::default() }),
        }
    }

    /// A token that fires `from_now` after this call.
    pub fn deadline_in(from_now: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + from_now)
    }

    /// A *linked* child token: it fires whenever this token fires (flag
    /// or deadline), and additionally when cancelled itself. Cancelling
    /// the child does **not** propagate upward — this is the per-request
    /// isolation the serve daemon rests on: server-shutdown →
    /// connection → request tokens form a tree, and a client
    /// disconnecting cancels exactly its own subtree.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                parent: Some(Arc::clone(&self.inner)),
                ..Inner::default()
            }),
        }
    }

    /// A linked child (see [`CancelToken::child`]) with its own
    /// deadline on top: the effective deadline is the earliest along
    /// the chain, so a per-request deadline can only tighten a
    /// server-wide one.
    pub fn child_with_deadline(&self, deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(deadline),
                parent: Some(Arc::clone(&self.inner)),
                ..Inner::default()
            }),
        }
    }

    /// [`CancelToken::child_with_deadline`], `from_now` after this call.
    pub fn child_with_deadline_in(&self, from_now: Duration) -> CancelToken {
        self.child_with_deadline(Instant::now() + from_now)
    }

    /// Requests cancellation. Idempotent, and safe to call from a signal
    /// handler: the body is an atomic store plus, when a wake fd is
    /// registered ([`set_wake_fd`](CancelToken::set_wake_fd)), one raw
    /// `write(2)` — both async-signal-safe; no locks, no allocation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
        #[cfg(unix)]
        {
            let fd = self.inner.wake_fd.load(Ordering::Acquire);
            if fd != NO_WAKE_FD {
                let byte = [b'!'];
                // EAGAIN (wake pipe already full) is as good as success;
                // EBADF after a reactor shut down is harmless too.
                unsafe {
                    let _ = write(fd, byte.as_ptr(), 1);
                }
            }
        }
    }

    /// Registers a descriptor (typically a reactor's
    /// [`Waker`](crate::reactor::Waker) pipe) to be written on
    /// [`cancel`](CancelToken::cancel), so a cancel interrupts a
    /// `poll(2)` blocked with no timeout. Shared by every clone of this
    /// token (but **not** by parents or children — register on the token
    /// the signal handler holds). Pass a negative fd to clear.
    ///
    /// The caller must keep the descriptor open for as long as cancels
    /// may fire, or clear the registration first.
    pub fn set_wake_fd(&self, fd: i32) {
        self.inner.wake_fd.store(if fd < 0 { NO_WAKE_FD } else { fd }, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called on any
    /// clone — of this token or of a linked ancestor. Does **not**
    /// consider the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled_anywhere()
    }

    /// The effective wall-clock deadline: the earliest along this
    /// token's linked-parent chain, if any carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.effective_deadline()
    }

    /// Polls both stop conditions. The external cancel flag wins when
    /// both hold: an operator's Ctrl-C should read as an interruption
    /// even if the deadline lapsed in the same instant.
    ///
    /// The fast path (default token, not cancelled) is one atomic load
    /// and one `Option` check — no clock read.
    pub fn stop_reason(&self) -> Option<CancelReason> {
        if self.is_cancelled() {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.effective_deadline() {
            Some(d) if Instant::now() >= d => Some(CancelReason::DeadlineExpired),
            _ => None,
        }
    }

    /// `stop_reason().is_some()`, for callers that only need a yes/no.
    pub fn should_stop(&self) -> bool {
        self.stop_reason().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.should_stop());
        assert_eq!(t.stop_reason(), None);
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_seen_by_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.stop_reason(), Some(CancelReason::Cancelled));
        // Idempotent.
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_reports_deadline_expired() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        assert!(!t.is_cancelled(), "deadline expiry is not a cancel");
        assert_eq!(t.stop_reason(), Some(CancelReason::DeadlineExpired));
        assert!(t.should_stop());
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        assert_eq!(t.stop_reason(), None);
        assert!(t.deadline().is_some());
    }

    #[test]
    fn cancel_outranks_an_expired_deadline() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        t.cancel();
        assert_eq!(t.stop_reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn child_fires_with_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel stays in its subtree");
        assert!(!b.is_cancelled(), "siblings are isolated");
        parent.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.stop_reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn child_deadline_is_the_earliest_in_the_chain() {
        let parent = CancelToken::deadline_in(Duration::from_secs(3600));
        let tight = parent.child_with_deadline_in(Duration::ZERO);
        assert_eq!(tight.stop_reason(), Some(CancelReason::DeadlineExpired));
        assert!(!parent.should_stop(), "parent deadline is far out");

        let loose = CancelToken::deadline_in(Duration::ZERO)
            .child_with_deadline_in(Duration::from_secs(3600));
        assert_eq!(
            loose.stop_reason(),
            Some(CancelReason::DeadlineExpired),
            "an expired parent deadline fires the child too"
        );
        let plain = parent.child();
        assert_eq!(plain.deadline(), parent.deadline(), "deadline is inherited");
    }

    #[test]
    fn grandchildren_observe_the_root() {
        let root = CancelToken::new();
        let leaf = root.child().child();
        assert!(!leaf.should_stop());
        root.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    #[cfg(unix)]
    fn cancel_rings_a_registered_wake_fd() {
        use std::io::Read;
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;

        let (tx, mut rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        let t = CancelToken::new();
        t.set_wake_fd(tx.as_raw_fd());
        let clone = t.clone();
        clone.cancel();
        let mut buf = [0u8; 8];
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = rx.read(&mut buf).unwrap();
        assert!(n >= 1, "cancel() should have written a wake byte");
        assert_eq!(buf[0], b'!');

        // Clearing the registration stops further writes.
        t.set_wake_fd(-1);
        t.cancel();
        rx.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        assert!(rx.read(&mut buf).is_err(), "no byte after the fd is cleared");
    }

    #[test]
    fn cancel_crosses_threads() {
        let t = CancelToken::new();
        let worker = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || worker.cancel());
        });
        assert!(t.is_cancelled());
    }
}
