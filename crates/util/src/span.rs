//! Source locations.
//!
//! Both front ends in this workspace (the C-subset parser in `stq-cir` and
//! the qualifier-definition parser in `stq-qualspec`) track byte-offset
//! spans so diagnostics can point at the offending source text.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span that points nowhere; used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Span {
        assert!(start <= end, "span start {start} past end {end}");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Returns true for the dummy (zero-length at offset 0) span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A human-readable line/column location resolved from a [`Span`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl Loc {
    /// Resolves the starting position of `span` against `source`.
    ///
    /// Offsets past the end of `source` resolve to the final position.
    pub fn of(span: Span, source: &str) -> Loc {
        let target = (span.start as usize).min(source.len());
        let mut line = 1;
        let mut col = 1;
        for (i, b) in source.bytes().enumerate() {
            if i == target {
                break;
            }
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn backwards_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn loc_resolution_counts_lines_and_columns() {
        let src = "ab\ncde\nf";
        assert_eq!(Loc::of(Span::new(0, 1), src), Loc { line: 1, col: 1 });
        assert_eq!(Loc::of(Span::new(4, 5), src), Loc { line: 2, col: 2 });
        assert_eq!(Loc::of(Span::new(7, 8), src), Loc { line: 3, col: 1 });
    }

    #[test]
    fn loc_past_end_clamps() {
        let src = "xy";
        let loc = Loc::of(Span::new(100, 101), src);
        assert_eq!(loc, Loc { line: 1, col: 3 });
    }

    #[test]
    fn dummy_span_properties() {
        assert!(Span::DUMMY.is_dummy());
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::DUMMY.len(), 0);
        assert!(!Span::new(0, 1).is_dummy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Span::new(2, 9).to_string(), "2..9");
        assert_eq!(Loc { line: 4, col: 7 }.to_string(), "4:7");
    }
}
